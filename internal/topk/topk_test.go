package topk

import (
	"math/rand"
	"sort"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

// figure1Phones is the cell-phone example of Figure 1 (smart, rating).
var figure1Phones = []vec.Vector{
	{0.6, 0.7}, // p1
	{0.2, 0.3}, // p2
	{0.1, 0.6}, // p3
	{0.7, 0.5}, // p4
	{0.8, 0.2}, // p5
}

var (
	tom   = vec.Vector{0.8, 0.2}
	jerry = vec.Vector{0.3, 0.7}
	spike = vec.Vector{0.9, 0.1}
)

func TestTopKMatchesFigure1(t *testing.T) {
	// Figure 1(a): Tom's top-2 is {p3, p2}, Jerry's {p2, p5}, Spike's {p2, p3}.
	cases := []struct {
		name string
		w    vec.Vector
		want []int // 0-based indexes in figure1Phones
	}{
		{"Tom", tom, []int{2, 1}},
		{"Jerry", jerry, []int{1, 4}},
		// Figure 1(a) prints Spike's set as "p2,p3" but Figure 1(c) gives
		// p3 rank 1 and p2 rank 2 for Spike (0.15 < 0.21): score order is
		// p3 then p2; the 1(a) cell is unordered.
		{"Spike", spike, []int{2, 1}},
	}
	for _, c := range cases {
		got := TopK(figure1Phones, c.w, 2, nil)
		if len(got) != 2 {
			t.Fatalf("%s: got %d results", c.name, len(got))
		}
		for i, want := range c.want {
			if got[i].Index != want {
				t.Errorf("%s: top-2[%d] = p%d, want p%d", c.name, i, got[i].Index+1, want+1)
			}
		}
	}
}

func TestRankMatchesFigure1(t *testing.T) {
	// Figure 1(c): ranks of each phone per user (1-based = Rank+1).
	wantRank := map[string][]int{ // per phone p1..p5
		"Tom":   {3, 2, 1, 4, 5},
		"Jerry": {5, 1, 3, 4, 2},
		"Spike": {3, 2, 1, 4, 5},
	}
	users := map[string]vec.Vector{"Tom": tom, "Jerry": jerry, "Spike": spike}
	for name, w := range users {
		for i, q := range figure1Phones {
			got := Rank(figure1Phones, w, q, nil) + 1 // q ∈ P, beats itself never
			if got != wantRank[name][i] {
				t.Errorf("%s rank of p%d = %d, want %d", name, i+1, got, wantRank[name][i])
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if got := TopK(figure1Phones, tom, 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := TopK(figure1Phones, tom, -3, nil); got != nil {
		t.Error("negative k should return nil")
	}
	got := TopK(figure1Phones, tom, 100, nil)
	if len(got) != len(figure1Phones) {
		t.Errorf("k > |P| returns full ranking, got %d", len(got))
	}
	// Full ranking must be sorted ascending.
	if !sort.SliceIsSorted(got, func(a, b int) bool { return less(got[a], got[b]) }) {
		t.Error("results not sorted")
	}
}

func TestTopKAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 500, 4, 1).Points
	for iter := 0; iter < 50; iter++ {
		W := dataset.GenerateWeights(rng, dataset.Uniform, 1, 4).Points[0]
		k := 1 + rng.Intn(20)
		got := TopK(P, W, k, nil)
		// Reference: full sort.
		ref := make([]Result, len(P))
		for i, p := range P {
			ref[i] = Result{i, vec.Dot(W, p)}
		}
		sort.Slice(ref, func(a, b int) bool { return less(ref[a], ref[b]) })
		for i := 0; i < k; i++ {
			if got[i] != ref[i] {
				t.Fatalf("iter %d: top-%d[%d] = %+v, want %+v", iter, k, i, got[i], ref[i])
			}
		}
	}
}

func TestTopKDeterministicOnTies(t *testing.T) {
	P := []vec.Vector{{1, 1}, {1, 1}, {1, 1}, {0, 0}}
	w := vec.Vector{0.5, 0.5}
	got := TopK(P, w, 3, nil)
	want := []int{3, 0, 1}
	for i := range want {
		if got[i].Index != want[i] {
			t.Fatalf("tie order: got %v", got)
		}
	}
}

func TestRankBounded(t *testing.T) {
	// p4 under Tom ranks 4th: 3 points beat it.
	q := figure1Phones[3]
	r, ok := RankBounded(figure1Phones, tom, q, 10, nil)
	if !ok || r != 3 {
		t.Errorf("RankBounded full = (%d, %v), want (3, true)", r, ok)
	}
	r, ok = RankBounded(figure1Phones, tom, q, 2, nil)
	if ok || r != 2 {
		t.Errorf("RankBounded cutoff 2 = (%d, %v), want (2, false)", r, ok)
	}
	r, ok = RankBounded(figure1Phones, tom, q, 0, nil)
	if ok || r != 0 {
		t.Errorf("RankBounded cutoff 0 = (%d, %v), want (0, false)", r, ok)
	}
}

func TestRankCountsOps(t *testing.T) {
	var c stats.Counters
	Rank(figure1Phones, tom, figure1Phones[0], &c)
	// 1 for f_w(q) + 5 for the points.
	if c.PairwiseMults != 6 {
		t.Errorf("PairwiseMults = %d, want 6", c.PairwiseMults)
	}
	if c.PointsVisited != 5 {
		t.Errorf("PointsVisited = %d, want 5", c.PointsVisited)
	}
}

func TestKRankHeap(t *testing.T) {
	kh := NewKRankHeap(2)
	if kh.Threshold() != int(^uint(0)>>1) {
		t.Error("empty heap should admit everything")
	}
	if !kh.Offer(Match{WeightIndex: 0, Rank: 50}) {
		t.Error("first offer must be kept")
	}
	if !kh.Offer(Match{WeightIndex: 1, Rank: 10}) {
		t.Error("second offer must be kept")
	}
	if kh.Threshold() != 50 {
		t.Errorf("threshold = %d, want 50", kh.Threshold())
	}
	if kh.Offer(Match{WeightIndex: 2, Rank: 50}) {
		t.Error("equal rank with higher index must be rejected")
	}
	if !kh.Offer(Match{WeightIndex: 3, Rank: 5}) {
		t.Error("better rank must be kept")
	}
	if kh.Threshold() != 10 {
		t.Errorf("threshold after eviction = %d, want 10", kh.Threshold())
	}
	res := kh.Results()
	if len(res) != 2 || res[0] != (Match{3, 5}) || res[1] != (Match{1, 10}) {
		t.Errorf("Results = %+v", res)
	}
}

func TestKRankHeapTieKeepsLowerIndex(t *testing.T) {
	kh := NewKRankHeap(1)
	kh.Offer(Match{WeightIndex: 5, Rank: 7})
	if kh.Offer(Match{WeightIndex: 9, Rank: 7}) {
		t.Error("tie with higher index should be rejected")
	}
	if !kh.Offer(Match{WeightIndex: 2, Rank: 7}) {
		t.Error("tie with lower index should replace")
	}
	if got := kh.Results()[0].WeightIndex; got != 2 {
		t.Errorf("kept index %d, want 2", got)
	}
}

func TestKRankHeapAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 100; iter++ {
		k := 1 + rng.Intn(10)
		n := 1 + rng.Intn(50)
		kh := NewKRankHeap(k)
		all := make([]Match, n)
		for i := range all {
			all[i] = Match{WeightIndex: i, Rank: rng.Intn(20)}
			kh.Offer(all[i])
		}
		sort.Slice(all, func(a, b int) bool { return matchWorse(all[b], all[a]) })
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := kh.Results()
		if len(got) != len(want) {
			t.Fatalf("iter %d: got %d results, want %d", iter, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: result[%d] = %+v, want %+v", iter, i, got[i], want[i])
			}
		}
	}
}

func TestNewKRankHeapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 should panic")
		}
	}()
	NewKRankHeap(0)
}
