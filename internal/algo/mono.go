package algo

import (
	"fmt"
	"sort"

	"gridrank/internal/vec"
)

// Monochromatic reverse top-k (Vlachou et al., ICDE 2010 / TKDE 2011 —
// the other variant the paper's Section 2 describes): instead of a finite
// preference set W, the answer is the region of weight space in which the
// query product ranks inside the top-k. In two dimensions every legal
// preference is (λ, 1−λ) for λ ∈ [0, 1], so the answer is a union of
// λ-intervals — the "k-polygon" boundary structure of Chester et al.
// (DASFAA 2013) specialized to d=2.
//
// The sweep works on rank-change events: product p beats q at λ iff
// λ·(p[0]−q[0]) + (1−λ)·(p[1]−q[1]) < 0. Each p contributes a half-line
// or an interval of λ where it beats q; accumulating +1/−1 events and
// sweeping λ from 0 to 1 yields rank(λ) piecewise-constantly, and the
// answer is the closure of {λ : rank(λ) < k}.

// Interval is a closed λ-range [Lo, Hi] ⊆ [0, 1] of weight vectors
// (λ, 1−λ) for which the query product is in the top-k.
type Interval struct {
	Lo, Hi float64
}

// MonoRTK answers the monochromatic reverse top-k query over a
// 2-dimensional product set: the maximal intervals of λ for which q ranks
// strictly better than all but at most k−1 products. It returns an error
// for non-2-d data (the monochromatic sweep is a planar construction).
func MonoRTK(P []vec.Vector, q vec.Vector, k int) ([]Interval, error) {
	if len(q) != 2 {
		return nil, fmt.Errorf("algo: MonoRTK needs 2-d data, got %d-d query", len(q))
	}
	if k <= 0 {
		return nil, fmt.Errorf("algo: MonoRTK needs k >= 1, got %d", k)
	}
	// Events at λ boundaries: +1 when a product starts beating q, −1 when
	// it stops. A product's beat-set is {λ : a·λ + b < 0} with
	// a = (p[0]−q[0]) − (p[1]−q[1]) and b = p[1]−q[1]: a half-interval of
	// [0, 1] (or all/none of it).
	type event struct {
		at    float64
		delta int
	}
	var events []event
	baseRank := 0 // products beating q on all of [0, 1]
	for i, p := range P {
		if len(p) != 2 {
			return nil, fmt.Errorf("algo: MonoRTK needs 2-d data, product %d is %d-d", i, len(p))
		}
		d0 := p[0] - q[0]
		d1 := p[1] - q[1]
		a := d0 - d1
		b := d1
		switch {
		case a == 0:
			if b < 0 { // beats q everywhere
				baseRank++
			}
		default:
			// Root of a·λ + b = 0.
			root := -b / a
			if a > 0 {
				// beats q for λ < root.
				switch {
				case root <= 0:
					// never beats q on [0, 1]
				case root >= 1:
					baseRank++
				default:
					events = append(events,
						event{at: 0, delta: +1},
						event{at: root, delta: -1})
				}
			} else {
				// beats q for λ > root.
				switch {
				case root >= 1:
					// never
				case root <= 0:
					baseRank++
				default:
					events = append(events, event{at: root, delta: +1})
					// implicit close at λ = 1
				}
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })

	// Sweep: rank(λ) between consecutive event positions is constant.
	var out []Interval
	rank := baseRank
	cur := 0.0
	open := false
	var start float64
	flushTo := func(to float64) {
		inside := rank < k
		if inside && !open {
			start, open = cur, true
		}
		if !inside && open {
			if start < cur {
				out = append(out, Interval{Lo: start, Hi: cur})
			}
			open = false
		}
		cur = to
	}
	i := 0
	for i < len(events) {
		at := events[i].at
		flushTo(at)
		for i < len(events) && events[i].at == at {
			rank += events[i].delta
			i++
		}
	}
	flushTo(1)
	if open || rank < k {
		// Close the trailing interval at λ = 1. If the final segment is
		// inside but no interval is open (events ended exactly at 1), open
		// a degenerate one only when a positive-length segment remains.
		if !open {
			start = cur
		}
		if start <= 1 {
			out = append(out, Interval{Lo: start, Hi: 1})
		}
	}
	return mergeIntervals(out), nil
}

// mergeIntervals coalesces touching intervals (events at identical λ can
// split what is logically one region).
func mergeIntervals(in []Interval) []Interval {
	if len(in) == 0 {
		return nil
	}
	out := []Interval{in[0]}
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}
