package algo

import (
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
)

// TestScaleCrossValidation re-runs the agreement check at a scale closer
// to the benchmark harness defaults, catching bugs that only appear when
// early-termination, the Domin buffer and the k-ranks threshold interact
// over many thousands of points (e.g. counter or cutoff drift).
func TestScaleCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale cross validation in -short mode")
	}
	rng := rand.New(rand.NewSource(2024))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 6000, 6, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 2500, 6)
	brute := NewBrute(P.Points, W.Points)
	gir := NewGIR(P.Points, W.Points, P.Range, 32)
	sim := NewSIM(P.Points, W.Points)
	bbr := NewBBR(P.Points, W.Points, 100)
	mpa, err := NewMPA(P.Points, W.Points, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, qi := range []int{0, 3000, 5999} {
		q := P.Points[qi]
		for _, k := range []int{1, 100, 500} {
			want := brute.ReverseTopK(q, k, nil)
			for _, a := range []RTKAlgorithm{gir, sim, bbr} {
				if got := a.ReverseTopK(q, k, nil); !equalInts(got, want) {
					t.Fatalf("%s RTK q=%d k=%d: %d results, want %d",
						a.Name(), qi, k, len(got), len(want))
				}
			}
			wantKR := brute.ReverseKRanks(q, k, nil)
			for _, a := range []RKRAlgorithm{gir, sim, mpa} {
				if got := a.ReverseKRanks(q, k, nil); !equalMatches(got, wantKR) {
					t.Fatalf("%s RKR q=%d k=%d disagrees", a.Name(), qi, k)
				}
			}
		}
	}
}

// TestDeterministicAnswers: identical inputs give identical outputs across
// repeated queries (no hidden state leaks between queries).
func TestDeterministicAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	P := dataset.GenerateProducts(rng, dataset.Clustered, 800, 5, 1000)
	W := dataset.GenerateWeights(rng, dataset.Clustered, 300, 5)
	gir := NewGIR(P.Points, W.Points, 1000, 32)
	q := P.Points[123]
	first := gir.ReverseKRanks(q, 20, nil)
	for i := 0; i < 3; i++ {
		// Interleave other queries to stress any shared state.
		gir.ReverseTopK(P.Points[i], 5, nil)
		gir.ReverseKRanks(P.Points[700+i], 9, nil)
		again := gir.ReverseKRanks(q, 20, nil)
		if !equalMatches(first, again) {
			t.Fatalf("repeat %d differs: %+v vs %+v", i, again, first)
		}
	}
}
