package algo

import (
	"sort"

	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// RTA is the reverse top-k threshold algorithm of Vlachou et al. (ICDE
// 2010), included as the related-work baseline of Section 2: weight
// vectors are processed in a similarity-preserving order and the top-k
// result of the previous weight is kept as a buffer. For the next weight,
// re-scoring just the k buffered points yields a threshold — the k-th
// smallest buffered score upper-bounds the true k-th best score — that
// often disqualifies q with k multiplications instead of |P|.
type RTA struct {
	P []vec.Vector
	W []vec.Vector

	// order visits weights lexicographically so that consecutive weights
	// are similar and the buffered top-k changes slowly.
	order []int
}

// NewRTA validates shapes and pre-computes the visiting order.
func NewRTA(P, W []vec.Vector) *RTA {
	validateSets(P, W)
	order := make([]int, len(W))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := W[order[a]], W[order[b]]
		for i := range wa {
			if wa[i] != wb[i] {
				return wa[i] < wb[i]
			}
		}
		return order[a] < order[b]
	})
	return &RTA{P: P, W: W, order: order}
}

// Name implements RTKAlgorithm.
func (r *RTA) Name() string { return "RTA" }

// ReverseTopK returns all weight indexes whose rank of q is below k.
func (r *RTA) ReverseTopK(q vec.Vector, k int, c *stats.Counters) []int {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil
	}
	var res []int
	var buffer []topk.Result // top-k of the previously evaluated weight
	for _, wi := range r.order {
		w := r.W[wi]
		fq := vec.Dot(w, q)
		if c != nil {
			c.PairwiseMults++
		}
		if len(buffer) == k {
			// Threshold test: the k-th smallest buffered score under the
			// current weight upper-bounds the true k-th best score. If q
			// scores strictly above it, at least k points beat q.
			kth := kthScore(r.P, w, buffer, c)
			if fq > kth {
				if c != nil {
					c.WeightsPruned++
				}
				continue
			}
		}
		// Full evaluation; the fresh top-k becomes the next buffer. The
		// buffer holds the k smallest scores, so the count of buffered
		// scores strictly below fq equals min(rank(w,q), k) and decides
		// membership exactly.
		buffer = topk.TopK(r.P, w, k, c)
		if rankOfScore(buffer, fq) < k {
			res = append(res, wi)
		}
	}
	sort.Ints(res)
	return res
}

// kthScore re-scores the k buffered points under w and returns the k-th
// smallest (i.e. largest buffered) score.
func kthScore(P []vec.Vector, w vec.Vector, buffer []topk.Result, c *stats.Counters) float64 {
	kth := 0.0
	for i, r := range buffer {
		s := vec.Dot(w, P[r.Index])
		if c != nil {
			c.PairwiseMults++
		}
		if i == 0 || s > kth {
			kth = s
		}
	}
	return kth
}

// rankOfScore counts the buffered results scoring strictly below fq. With
// the buffer holding the exact top-k, this equals min(rank(w,q), k).
func rankOfScore(buffer []topk.Result, fq float64) int {
	rank := 0
	for _, r := range buffer {
		if r.Score < fq {
			rank++
		}
	}
	return rank
}
