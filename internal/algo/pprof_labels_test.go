package algo

import (
	"bytes"
	"context"
	"math/rand"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gridrank/internal/dataset"
	"gridrank/internal/stats"
)

// TestScanWorkerPprofLabels drives parallel queries while sampling the
// goroutine profile (debug=1, which prints goroutine labels) until the
// scan workers' rrq_* labels show up. This is the contract the
// incident-forensics workflow leans on: a goroutine or CPU profile
// taken during an incident attributes worker time to query kind, k and
// layout without any code change.
func TestScanWorkerPprofLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 4000, 6, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 4000, 6)
	gir := NewGIR(P.Points, W.Points, P.Range, 32)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		var c stats.Counters
		for i := 0; !stop.Load(); i++ {
			q := P.Points[i%len(P.Points)]
			if _, err := gir.ReverseTopKCtx(ctx, q, 40, 4, &c); err != nil {
				return
			}
			if _, err := gir.ReverseKRanksCtx(ctx, q, 10, 4, &c); err != nil {
				return
			}
		}
	}()
	defer func() { stop.Store(true); cancel(); <-done }()

	profile := pprof.Lookup("goroutine")
	deadline := time.Now().Add(10 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := profile.WriteTo(&buf, 1); err != nil {
			t.Fatalf("goroutine profile: %v", err)
		}
		last = buf.String()
		if strings.Contains(last, `"rrq_query":"reverse_topk"`) ||
			strings.Contains(last, `"rrq_query":"reverse_kranks"`) {
			if !strings.Contains(last, `"rrq_layout":"float64"`) {
				t.Errorf("worker labels missing rrq_layout: %s", relevantLines(last))
			}
			if !strings.Contains(last, `"rrq_k":`) {
				t.Errorf("worker labels missing rrq_k: %s", relevantLines(last))
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("scan worker labels never appeared in the goroutine profile; last labels:\n%s", relevantLines(last))
}

func relevantLines(profile string) string {
	var out []string
	for _, line := range strings.Split(profile, "\n") {
		if strings.Contains(line, "labels:") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
