package algo

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"gridrank/internal/bits"
	"gridrank/internal/grid"
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/trace"
	"gridrank/internal/vec"
)

// GIR is the Grid-index algorithm of Section 4. Construction pre-computes
// the Grid-index (boundary-product table), the approximate vectors P^(A)
// and W^(A), and their cell groupings (distinct approximate rows with
// member lists); queries then scan the approximate vectors, decide most
// points from the Grid bounds alone (Cases 1 and 2 of Section 3.1, d table
// lookups and additions, zero multiplications), and compute exact scores
// only for the Case-3 candidates that survive.
//
// Two layout decisions make the scan cost proportional to DISTINCT grid
// cells rather than raw data size (see DESIGN.md §9):
//
//   - Points sharing an approximate vector receive identical bounds under
//     every weight, so the bound evaluation runs once per point group and
//     Case 1/2 classify the whole group at once.
//   - Weights sharing an approximate vector select identical grid columns,
//     so the scan visits W in cell-sorted order and re-gathers the
//     interleaved bound scratch only when the weight group changes.
//
// P and W are stored as contiguous row-major matrices (Point/Weight
// return stride-d views into that storage), so the Case-3 refinement
// dots stream sequential memory. The matrices may alias memory the
// caller owns — including an mmap-ed index file — which is why nothing
// here ever builds per-row headers eagerly or writes into them.
type GIR struct {
	pm *vec.Matrix
	wm *vec.Matrix

	// DisableDomin turns off the Domin buffer (Algorithm 1's dominating-
	// point memoization). Queries stay correct; the flag exists for the
	// ablation experiment that measures what the buffer is worth.
	DisableDomin bool

	// Parallelism is the number of worker goroutines a single query
	// shards W across (see gir_parallel.go). 0 or 1 keeps the sequential
	// scan; values above 1 enable the intra-query worker pool. Results
	// are identical either way. The field is read-only configuration and
	// must not be changed while queries are in flight.
	Parallelism int

	g  grid.Bounder
	pa *grid.Index        // P^(A)
	wa *grid.Index        // W^(A)
	pg *grid.GroupedIndex // distinct P^(A) rows with member lists
	wg *grid.GroupedIndex // distinct W^(A) rows; MemberOrder is the scan order

	// packedBits > 0 stores the distinct P^(A) rows bit-packed at that
	// many bits per cell (Section 3.2's b·d-bit strings) and routes
	// classification through the widened kernels of gir_packed.go; 0
	// keeps the unpacked uint8 rows. pk caches the grouping's packed
	// store so the hot loop reaches it in one load.
	packedBits int
	pk         *bits.PackedRows

	// pool recycles per-query state (Domin buffer, bound scratch, result
	// heap and buffers) so steady-state queries allocate only their result
	// slice. Shared by the sequential and parallel paths.
	pool sync.Pool
}

// DefaultPartitions is the paper's default grid resolution n = 32
// (sufficient for >99% filtering up to d ≈ 20 by Theorem 1).
const DefaultPartitions = 32

// Packed-width limits: below 4 bits a grid would have at most 8
// partitions (too coarse to be worth a dedicated layout), above 8 a
// cell no longer fits the uint8 unpacked rows the rest of the pipeline
// shares.
const (
	MinPackedBits = 4
	MaxPackedBits = 8
)

// Layout selects the physical representation of the scan structures.
// The zero value is the default unpacked layout.
type Layout struct {
	// PackedBits of 0 keeps unpacked uint8 cell rows; a value in
	// [MinPackedBits, MaxPackedBits] stores the distinct point rows
	// bit-packed at that width and classifies them with the widened
	// multi-row kernels. 1<<PackedBits must cover the grid partitions.
	PackedBits int
}

// NewGIR builds the Grid-index for point attributes in [0, rangeP) with n
// partitions per axis and pre-computes both approximate vector sets.
//
// The weight axis is partitioned over [0, max observed weight component],
// not [0, 1]: the paper divides each axis over "the range of the
// attribute's values", and for simplex weights that range shrinks like
// 1/d — partitioning the full unit interval would leave every weight in
// the first couple of cells and make the upper bound useless in high
// dimensions.
func NewGIR(P, W []vec.Vector, rangeP float64, n int) *GIR {
	validateSets(P, W)
	if n < 1 {
		panic(fmt.Sprintf("algo: grid partitions %d < 1", n))
	}
	return NewGIRWithBounder(P, W, grid.New(n, rangeP, maxComponent(W)))
}

// maxComponent returns the largest vector component, used as the weight
// axis range. The result is nudged up one ulp so the maximum itself maps
// strictly inside the last cell.
func maxComponent(vs []vec.Vector) float64 {
	m := 0.0
	for _, v := range vs {
		for _, x := range v {
			if x > m {
				m = x
			}
		}
	}
	if m <= 0 {
		return 1
	}
	return math.Nextafter(m, math.Inf(1))
}

// CanonicalWeightRange is maxComponent over a weight matrix's flat
// backing — the weight-axis range a fresh build over wm would use. The
// persist layer compares it against a stored grid's RangeW to decide
// whether the weight-side artifacts are still canonical at save time.
// The scan order differs from maxComponent's row order but a maximum is
// order-independent, so the value is bit-identical.
func CanonicalWeightRange(wm *vec.Matrix) float64 {
	m := 0.0
	for _, x := range wm.Data() {
		if x > m {
			m = x
		}
	}
	if m <= 0 {
		return 1
	}
	return math.Nextafter(m, math.Inf(1))
}

// NewGIRWithBounder builds GIR over any grid implementation — the paper's
// equal-width Grid or the adaptive quantile grid of its future work
// (grid.NewAdaptive) — copying the data into contiguous storage and
// pre-computing both approximate vector sets and their cell groupings.
func NewGIRWithBounder(P, W []vec.Vector, g grid.Bounder) *GIR {
	validateSets(P, W)
	return newGIR(vec.NewMatrix(P), vec.NewMatrix(W), g, Layout{})
}

// NewGIRLayout is NewGIR with an explicit storage layout.
func NewGIRLayout(P, W []vec.Vector, rangeP float64, n int, lay Layout) *GIR {
	validateSets(P, W)
	if n < 1 {
		panic(fmt.Sprintf("algo: grid partitions %d < 1", n))
	}
	return newGIR(vec.NewMatrix(P), vec.NewMatrix(W), grid.New(n, rangeP, maxComponent(W)), lay)
}

// NewGIRFromMatrices is NewGIR over pre-flattened data sets, adopting the
// matrices without copying. The root package uses it so the index and the
// algorithm share one backing array per set.
func NewGIRFromMatrices(pm, wm *vec.Matrix, rangeP float64, n int) *GIR {
	return NewGIRFromMatricesLayout(pm, wm, rangeP, n, Layout{})
}

// NewGIRFromMatricesLayout is NewGIRFromMatrices with an explicit storage
// layout.
func NewGIRFromMatricesLayout(pm, wm *vec.Matrix, rangeP float64, n int, lay Layout) *GIR {
	if n < 1 {
		panic(fmt.Sprintf("algo: grid partitions %d < 1", n))
	}
	return newGIR(pm, wm, grid.New(n, rangeP, CanonicalWeightRange(wm)), lay)
}

func newGIR(pm, wm *vec.Matrix, g grid.Bounder, lay Layout) *GIR {
	pa := grid.NewPointIndex(g, pm.Rows())
	wa := grid.NewWeightIndex(g, wm.Rows())
	gr := &GIR{
		pm: pm,
		wm: wm,
		g:  g,
		pa: pa,
		wa: wa,
		pg: grid.NewGrouped(pa),
		wg: grid.NewGrouped(wa),
	}
	if lay.PackedBits != 0 {
		gr.enablePacked(lay.PackedBits)
	}
	return gr
}

// GIRParts are the precomputed artifacts NewGIRFromParts assembles a
// GIR from — everything newGIR would otherwise derive, as loaded from a
// GRI3 file. All references are adopted without copying; they may alias
// mapped memory.
type GIRParts struct {
	PM, WM *vec.Matrix
	Grid   grid.Bounder
	PA, WA *grid.Index        // P^(A), W^(A) element cells
	PG, WG *grid.GroupedIndex // their groupings
	// PackedBits > 0 routes classification through the packed kernels;
	// PG.Packed() must then hold the matching-width store.
	PackedBits int
}

// NewGIRFromParts assembles a GIR from precomputed artifacts without
// deriving anything: no approximate vectors are recomputed, no rows are
// regrouped, no row headers are materialized — the O(1) constructor the
// mmap load path needs. The caller (the persist layer) is responsible
// for the parts being mutually consistent; shape checks that cost more
// than O(groups) belong there, not here.
func NewGIRFromParts(parts GIRParts) *GIR {
	gr := &GIR{
		pm: parts.PM,
		wm: parts.WM,
		g:  parts.Grid,
		pa: parts.PA,
		wa: parts.WA,
		pg: parts.PG,
		wg: parts.WG,
	}
	if b := parts.PackedBits; b != 0 {
		if b < MinPackedBits || b > MaxPackedBits {
			panic(fmt.Sprintf("algo: packed bits %d outside [%d, %d]", b, MinPackedBits, MaxPackedBits))
		}
		pk := gr.pg.Packed()
		if pk == nil || pk.BitsPerDim() != b {
			panic(fmt.Sprintf("algo: parts promise %d-bit packed rows but the grouping does not carry them", b))
		}
		gr.packedBits = b
		gr.pk = pk
	}
	return gr
}

// enablePacked validates b against the grid and materializes the packed
// point-row store. Construction-time only: the field is read-only
// configuration once queries are in flight.
func (gr *GIR) enablePacked(b int) {
	if b < MinPackedBits || b > MaxPackedBits {
		panic(fmt.Sprintf("algo: packed bits %d outside [%d, %d]", b, MinPackedBits, MaxPackedBits))
	}
	if 1<<b < gr.g.N() {
		panic(fmt.Sprintf("algo: packed bits %d cannot encode %d grid partitions", b, gr.g.N()))
	}
	gr.pg.Pack(b)
	gr.packedBits = b
	gr.pk = gr.pg.Packed()
}

// PackedBits returns the configured packed row width, 0 when the index
// stores unpacked uint8 rows.
func (gr *GIR) PackedBits() int { return gr.packedBits }

// Name implements RTKAlgorithm and RKRAlgorithm.
func (gr *GIR) Name() string { return "GIR" }

// Grid exposes the underlying Grid-index (for diagnostics and the
// experiment harness).
func (gr *GIR) Grid() grid.Bounder { return gr.g }

// PointCells exposes the element-wise approximate point vectors P^(A).
// The persistence layer packs them in element order — unlike the
// grouped store, whose group numbering depends on mutation history —
// so saved packed sections are byte-identical for a mutated index and
// a fresh build over the same data.
func (gr *GIR) PointCells() *grid.Index { return gr.pa }

// WeightCells exposes the element-wise approximate weight vectors
// W^(A), for the persistence layer.
func (gr *GIR) WeightCells() *grid.Index { return gr.wa }

// PointGrouping exposes the distinct-P^(A)-row grouping, for the
// persistence layer.
func (gr *GIR) PointGrouping() *grid.GroupedIndex { return gr.pg }

// WeightGrouping exposes the distinct-W^(A)-row grouping, for the
// persistence layer.
func (gr *GIR) WeightGrouping() *grid.GroupedIndex { return gr.wg }

// Point returns point j as a view into the contiguous backing; callers
// must not modify it.
func (gr *GIR) Point(j int) vec.Vector { return gr.pm.Row(j) }

// Weight returns weight i as a view into the contiguous backing;
// callers must not modify it.
func (gr *GIR) Weight(i int) vec.Vector { return gr.wm.Row(i) }

// NumPoints returns |P|.
func (gr *GIR) NumPoints() int { return gr.pm.Len() }

// NumWeights returns |W|.
func (gr *GIR) NumWeights() int { return gr.wm.Len() }

// PointGroups returns the number of distinct P^(A) rows (diagnostics).
func (gr *GIR) PointGroups() int { return gr.pg.Groups() }

// WeightGroups returns the number of distinct W^(A) rows (diagnostics).
func (gr *GIR) WeightGroups() int { return gr.wg.Groups() }

// rankBounded is GInTop-k (Algorithm 1): it determines rank(w_i, q)
// bounded by cutoff, scanning the DISTINCT P^(A) rows and classifying
// each group with the Grid bounds shared by all its members. ok is false
// when the rank reached cutoff (the paper's "return -1").
//
// Grouped counting is exact (DESIGN.md §9): the returned rank is the
// number of points scoring strictly below f_w(q) (dominators counted
// through dom.count, Case-1 groups in one addition, Case-3 members by
// exact refinement), so the (rank, ok) contract is identical to the
// per-point scan for every cutoff.
//
// Two deliberate deviations from the paper's pseudocode, both discussed in
// DESIGN.md: the Case-1 test uses strict U < f_w(q) so score ties never
// count against q (Algorithm 1 prints "≤", which would miscount a point
// whose score equals f_w(q) when the upper bound is tight), and the
// cutoff test is rnk ≥ cutoff, matching the prose ("whenever rnk reaches
// k") rather than the printed "rnk > k".
func (gr *GIR) rankBounded(wi int, q vec.Vector, cutoff int, dom *domin, scratch *girScratch, c *stats.Counters) (int, bool) {
	w := gr.wm.Row(wi)
	fq := vec.Dot(w, q)
	if c != nil {
		c.PairwiseMults++
	}
	rnk := dom.count
	if rnk >= cutoff {
		return cutoff, false
	}
	gr.loadWeightGroup(scratch, int(gr.wg.GroupOf(wi)))
	if gr.pk != nil && !scratch.ref {
		return gr.rankBoundedPacked(w, q, fq, rnk, cutoff, dom, scratch, c)
	}
	bnd := scratch.bounds
	d := gr.pa.Dim()
	n2 := 2 * gr.g.N()
	// A packed index reaches this loop only through WithLayoutReference;
	// its gathered table uses the packed split layout, so route
	// classification through the matching scalar classifier.
	split := gr.pk != nil
	rows := gr.pg.Rows()
	single := gr.pg.Single()
	groupLive := dom.groupLive
	// The hot loop touches exactly one bookkeeping word per group
	// (groupLive); everything else it needs — the unique rows, the bound
	// scratch and the singleton cache — is a handful of locals, so the
	// register allocator keeps the bound summation spill-free. The rare
	// paths (first-time dominance sweeps, multi-member refinement) live in
	// noinline helpers below precisely to keep their state out of this
	// frame; continuous data (all singleton groups) then pays next to
	// nothing over a per-point scan.
	nG := len(groupLive)
	for g, base := 0, 0; g < nG; g, base = g+1, base+d {
		live := int(groupLive[g])
		if live == 0 {
			// Every member is a known dominator, already counted into the
			// initial rnk.
			continue
		}
		if c != nil {
			c.BoundSums++
			c.ApproxVisited++
		}
		var cs int32
		if split {
			cs = classifyRowSplit(rows[base:base+d], bnd, fq)
		} else {
			cs = classifyRow(rows[base:base+d], bnd, n2, fq)
		}
		if cs == caseBefore { // Case 1: the whole group precedes q
			rnk += live
			if c != nil {
				c.Filtered += int64(live)
				c.Case1Filtered += int64(live)
			}
			// Dominance-test the members once per query (memoized); after
			// the group is fully checked this branch is two loads.
			if !gr.DisableDomin && dom.groupChecked[g] < dom.groupSizes[g] {
				gr.observeGroup(g, dom, q)
			}
			if rnk >= cutoff {
				return cutoff, false
			}
			continue
		}
		if cs == caseRefine {
			// Case 3: incomparable — refine with exact scores. Algorithm 1
			// collects candidates and refines after the scan, but refining
			// immediately keeps rnk an exact running count, so the cutoff
			// fires as early as possible.
			if pj := int(single[g]); pj >= 0 {
				// Singleton: live > 0 already proves the lone member is
				// not a known dominator, so the dom.has load is skipped.
				if c != nil {
					c.PairwiseMults++
					c.Refinements++
					c.PointsVisited++
				}
				p := gr.pm.Row(pj)
				if vec.Dot(w, p) < fq {
					rnk++
					if !gr.DisableDomin {
						dom.observe(pj, p, q)
					}
					if rnk >= cutoff {
						return cutoff, false
					}
				}
				continue
			}
			var ok bool
			if rnk, ok = gr.refineGroup(g, w, q, fq, rnk, cutoff, dom, c); !ok {
				return cutoff, false
			}
		} else if c != nil { // Case 2: q precedes the whole group
			c.Filtered += int64(live)
			c.Case2Filtered += int64(live)
		}
	}
	return rnk, true
}

// Case codes returned by classifyRow, numbered as in Section 3.1.
const (
	caseBefore int32 = 1 // upper bound below f_w(q): the whole group precedes q
	caseAfter  int32 = 2 // lower bound above f_w(q): q precedes the whole group
	caseRefine int32 = 3 // bounds straddle f_w(q): members need exact scores
)

// classifyRow evaluates the Grid bounds of one unique approximate row
// against fq in a single fused pass — adjacent loads, one loop.
// (Computing the lower bound lazily, as Algorithm 1 suggests, measures
// slower: the second pass re-pays the loop for every non-Case-1 row.)
//
// It is deliberately noinline: rankBounded's frame is call-heavy, and
// Go's caller-saved ABI forces anything live across a call onto the
// stack, so inlining this loop there makes every bound addend a stack
// round-trip. As a call-free leaf with few live values the summation runs
// entirely in registers, which measures faster than inlining despite the
// call per group. (Batching several rows per call to amortize it further
// measures slower again: the scan's cutoff usually fires within a few
// dozen rows, so a batch wastes more bound evaluations than the call
// costs.)
//
//go:noinline
func classifyRow(row []uint8, bnd []float64, n2 int, fq float64) int32 {
	var u, l float64
	off := 0
	for _, pc := range row {
		j := off + 2*int(pc)
		l += bnd[j]
		u += bnd[j+1]
		off += n2
	}
	if u < fq {
		return caseBefore
	}
	if l <= fq {
		return caseRefine
	}
	return caseAfter
}

// observeGroup runs the memoized dominance test over every member of point
// group g. It is called at most once per (group, query) with work to do —
// afterwards the groupChecked counter short-circuits the caller — and is
// kept out of rankBounded's frame (noinline) so its member-list state does
// not bloat the hot loop's register pressure.
//
//go:noinline
func (gr *GIR) observeGroup(g int, dom *domin, q vec.Vector) {
	for _, m := range gr.pg.Members(g) {
		pj := int(m)
		dom.observe(pj, gr.pm.Row(pj), q)
	}
}

// refineGroup resolves a Case-3 group with several members by exact
// refinement, returning the updated running rank and ok=false when the
// cutoff fired. Out of line for the same register-pressure reason as
// observeGroup: multi-member groups either don't occur (continuous data)
// or amortize the call over their whole member list (catalog data).
//
//go:noinline
func (gr *GIR) refineGroup(g int, w, q vec.Vector, fq float64, rnk, cutoff int, dom *domin, c *stats.Counters) (int, bool) {
	for _, m := range gr.pg.Members(g) {
		pj := int(m)
		if dom.has(pj) {
			continue
		}
		if c != nil {
			c.PairwiseMults++
			c.Refinements++
			c.PointsVisited++
		}
		p := gr.pm.Row(pj)
		if vec.Dot(w, p) < fq {
			rnk++
			if !gr.DisableDomin {
				dom.observe(pj, p, q)
			}
			if rnk >= cutoff {
				return cutoff, false
			}
		}
	}
	return rnk, true
}

// girScratch holds the per-query buffer rankBounded reuses across weight
// vectors: the interleaved (lower, upper) column pairs, d·2n floats,
// tagged by the weight group they were gathered for. The tag persists
// across pooled reuse — the gathered columns depend only on the grid and
// the weight group, both fixed per index.
type girScratch struct {
	bounds []float64
	wgid   int32
	// ref forces the unpacked float64 classification path for this query
	// even when the index stores packed rows (the WithLayoutReference
	// debugging aid). Reset on every getState.
	ref bool
}

// boundStride is the per-dimension stride, in float64s, of the gathered
// bound table. Unpacked indexes use the tight 2n (interleaved addend
// pairs for the n point cells, nothing else). Packed indexes pad every
// dimension to the constant packedBoundStride and split it into
// lower/upper halves so the packed kernels can prove their table loads
// in bounds and address them without per-row index arithmetic (see
// gir_packed.go); only 2n entries per dimension are ever written or
// read — cell codes are < n — and each row sum adds the same addend
// values in the same dimension order in both layouts.
func (gr *GIR) boundStride() int {
	if gr.pk != nil {
		return packedBoundStride
	}
	return 2 * gr.g.N()
}

// loadWeightGroup gathers the grid columns selected by the weight
// group's approximate vector into the flat per-query scratch
// (Equations 3 and 4, column-wise). The unpacked layout interleaves:
// bnd[i·2n + 2·pc] is the lower addend and bnd[i·2n + 2·pc + 1] the
// upper addend for dimension i, point cell pc, so the two addends of a
// cell share a cache line. The packed layout splits each dimension's
// stride into halves: bnd[i·s + pc] lower, bnd[i·s + packedBoundHalf +
// pc] upper, the shape the packed kernels address with zero index
// arithmetic. Touched entries are d·2n floats either way —
// L1-resident for the paper's configurations. Weights are visited in
// cell-sorted order, so consecutive rankBounded calls usually hit the
// tag and skip the gather entirely.
func (gr *GIR) loadWeightGroup(scratch *girScratch, wgid int) {
	if scratch.wgid == int32(wgid) {
		return
	}
	bnd := scratch.bounds
	if gr.pk != nil {
		for i, wc := range gr.wg.Row(wgid) {
			loCol := gr.g.LowerColumn(wc)
			upCol := gr.g.UpperColumn(wc)
			row := bnd[i*packedBoundStride : i*packedBoundStride+packedBoundStride]
			copy(row, loCol)
			copy(row[packedBoundHalf:], upCol)
		}
		scratch.wgid = int32(wgid)
		return
	}
	n2 := 2 * gr.g.N()
	for i, wc := range gr.wg.Row(wgid) {
		loCol := gr.g.LowerColumn(wc)
		upCol := gr.g.UpperColumn(wc)
		row := bnd[i*n2 : (i+1)*n2]
		for pc := range loCol {
			row[2*pc] = loCol[pc]
			row[2*pc+1] = upCol[pc]
		}
	}
	scratch.wgid = int32(wgid)
}

func (gr *GIR) newScratch() *girScratch {
	return &girScratch{
		bounds: make([]float64, gr.pa.Dim()*gr.boundStride()),
		wgid:   -1,
	}
}

// newGroupedDomin allocates a Domin buffer wired to the point groups, so
// grouped Case-1 counting can add whole groups of live (non-dominator)
// members in one step.
func (gr *GIR) newGroupedDomin() *domin {
	d := newDomin(gr.pm.Len())
	d.groupOf = gr.pg.GroupMap()
	nG := gr.pg.Groups()
	d.groupSizes = make([]int32, nG)
	for g := 0; g < nG; g++ {
		d.groupSizes[g] = int32(gr.pg.Size(g))
	}
	d.groupLive = make([]int32, nG)
	copy(d.groupLive, d.groupSizes)
	d.groupChecked = make([]int32, nG)
	return d
}

// queryState is the pooled per-query working set: Domin buffer, bound
// scratch, result heap and collection buffer. getState resets the parts
// that must not leak between queries; the scratch's gathered columns stay
// valid across queries and are kept.
type queryState struct {
	dom     *domin
	scratch *girScratch
	heap    *topk.KRankHeap
	res     []int
}

// getState pops a recycled query state from the pool (reset-on-get) or
// allocates a fresh one.
func (gr *GIR) getState() *queryState {
	if st, ok := gr.pool.Get().(*queryState); ok {
		st.dom.reset()
		st.scratch.ref = false
		st.res = st.res[:0]
		return st
	}
	return &queryState{
		dom:     gr.newGroupedDomin(),
		scratch: gr.newScratch(),
		heap:    topk.NewKRankHeap(1),
	}
}

func (gr *GIR) putState(st *queryState) { gr.pool.Put(st) }

// cancelChunk is the cancellation granularity of both scan paths: the
// sequential loops poll ctx.Err() every cancelChunk weight vectors, and
// the parallel workers bound their claim chunks to at most cancelChunk
// weights and poll between claims. One chunk is the most work a
// cancelled query performs per goroutine before returning, and at ~|P|
// operations per weight it amortizes the poll to nothing.
const cancelChunk = 1024

// ReverseTopK is GIRTop-k (Algorithm 2), sharded across gr.Parallelism
// workers when configured above 1.
func (gr *GIR) ReverseTopK(q vec.Vector, k int, c *stats.Counters) []int {
	res, _ := gr.ReverseTopKCtx(context.Background(), q, k, gr.defaultWorkers(), c)
	return res
}

// ReverseTopKParallel is ReverseTopK with an explicit worker count
// overriding gr.Parallelism: 1 runs the sequential scan, values above 1
// shard W across that many goroutines, and 0 or negative means
// GOMAXPROCS. The answer is identical for every worker count.
func (gr *GIR) ReverseTopKParallel(q vec.Vector, k, workers int, c *stats.Counters) []int {
	res, _ := gr.ReverseTopKCtx(context.Background(), q, k, workers, c)
	return res
}

// defaultWorkers maps gr.Parallelism to an explicit worker count: values
// below 1 mean the sequential scan.
func (gr *GIR) defaultWorkers() int {
	if gr.Parallelism < 1 {
		return 1
	}
	return gr.Parallelism
}

// ReverseTopKCtx is ReverseTopKParallel under a context: the scan polls
// ctx between preference chunks (cancelChunk weights) on every goroutine,
// so a cancelled or expired context stops the query within one chunk and
// returns ctx.Err() with no workers left behind. The answer is identical
// for every worker count; a cancelled query returns a nil answer.
func (gr *GIR) ReverseTopKCtx(ctx context.Context, q vec.Vector, k, workers int, c *stats.Counters) ([]int, error) {
	return gr.ReverseTopKTraced(ctx, q, k, workers, c, nil)
}

// QueryOpts bundles the per-query execution knobs of the Opts
// entrypoints — the coherent replacement for the positional
// (workers, counters, trace) parameter lists of the older variants.
// The zero value runs a sequential, untraced, uncounted query on the
// index's native layout.
type QueryOpts struct {
	// Workers shards W across that many goroutines; 0 or 1 keeps the
	// sequential scan, negative means GOMAXPROCS. Answers are identical
	// at every worker count.
	Workers int
	// Counters, when non-nil, accumulates the per-case scan breakdown.
	Counters *stats.Counters
	// Trace, when recording, receives scan/merge spans.
	Trace *trace.Trace
	// Reference forces the unpacked float64 classification path for this
	// query even on a packed-layout index — a debugging/bisection aid;
	// answers are byte-identical either way (the equivalence tests are
	// the proof).
	Reference bool
}

// ReverseTopKTraced is ReverseTopKCtx with per-query tracing: when tr is
// a recording trace, the scan and result merge emit spans carrying the
// per-case breakdown of Section 3.1 (Case-1 adds, Case-2 skips, Case-3
// refinements, the filter rate and the dominator count). A nil tr is the
// common case and adds no work to the query path — every span call on a
// nil trace is a free no-op.
func (gr *GIR) ReverseTopKTraced(ctx context.Context, q vec.Vector, k, workers int, c *stats.Counters, tr *trace.Trace) ([]int, error) {
	if workers == 0 {
		workers = -1 // positional 0 meant GOMAXPROCS; QueryOpts 0 means sequential
	}
	return gr.ReverseTopKOpts(ctx, q, k, QueryOpts{Workers: workers, Counters: c, Trace: tr})
}

// ReverseTopKOpts is GIRTop-k (Algorithm 2) under a context with the
// execution knobs gathered in QueryOpts; every other ReverseTopK variant
// is a wrapper over it. See ReverseTopKCtx for the cancellation contract
// and ReverseTopKTraced for the span contract.
func (gr *GIR) ReverseTopKOpts(ctx context.Context, q vec.Vector, k int, opts QueryOpts) ([]int, error) {
	c, tr := opts.Counters, opts.Trace
	if tr != nil && c == nil {
		// A traced query needs the per-case counters for its span
		// attributes even when the caller did not ask for stats.
		c = new(stats.Counters)
	}
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	if workers = normalizeWorkers(workers, gr.wm.Len()); workers > 1 {
		return gr.reverseTopKParallel(ctx, q, k, workers, c, tr, opts.Reference)
	}
	done := ctx.Done()
	st := gr.getState()
	defer gr.putState(st)
	st.scratch.ref = opts.Reference
	sp := tr.StartSpan("scan")
	base := counterBaseline(sp, c)
	var scanErr error
	earlyEmpty := false
	// Visit W in cell-sorted order so consecutive weights share the
	// gathered bound columns; the answer set is order-independent
	// (DESIGN.md §9) and re-sorted ascending below.
	for pos, wi := range gr.wg.MemberOrder() {
		if done != nil && pos%cancelChunk == 0 && pos > 0 {
			if err := ctx.Err(); err != nil {
				scanErr = err
				break
			}
		}
		if _, ok := gr.rankBounded(int(wi), q, k, st.dom, st.scratch, c); ok {
			st.res = append(st.res, int(wi))
		}
		// Algorithm 2 lines 7–8: with k dominators, no weight can place q
		// in its top-k.
		if st.dom.count >= k {
			earlyEmpty = true
			break
		}
	}
	endScanSpan(sp, c, base, st.dom.count, k, gr.wm.Len())
	if scanErr != nil {
		return nil, scanErr
	}
	if earlyEmpty || len(st.res) == 0 {
		return nil, nil
	}
	msp := tr.StartSpan("merge")
	sort.Ints(st.res)
	res := make([]int, len(st.res))
	copy(res, st.res)
	msp.SetInt("results", int64(len(res))).End()
	return res, nil
}

// ReverseKRanks is GIRk-Rank (Algorithm 3): the size-k heap's worst
// retained rank (minRank) is passed to GInTop-k as the filtering cutoff
// and tightens as better weights are found. When gr.Parallelism exceeds
// 1, the scan is sharded and the cutoff becomes a shared watermark.
func (gr *GIR) ReverseKRanks(q vec.Vector, k int, c *stats.Counters) []topk.Match {
	res, _ := gr.ReverseKRanksCtx(context.Background(), q, k, gr.defaultWorkers(), c)
	return res
}

// ReverseKRanksParallel is ReverseKRanks with an explicit worker count
// overriding gr.Parallelism: 1 runs the sequential scan, values above 1
// shard W across that many goroutines, and 0 or negative means
// GOMAXPROCS. The answer is identical for every worker count.
func (gr *GIR) ReverseKRanksParallel(q vec.Vector, k, workers int, c *stats.Counters) []topk.Match {
	res, _ := gr.ReverseKRanksCtx(context.Background(), q, k, workers, c)
	return res
}

// admitCutoff is the rank bound for the next weight under the cell-sorted
// visit order: one PAST the heap's admission threshold, because a weight
// whose exact rank ties the worst retained match can still win the
// (rank, index) tie-break — it must be evaluated exactly, not pruned.
// This mirrors the parallel watermark's T+1 rule (DESIGN.md §7, §9).
func admitCutoff(h *topk.KRankHeap) int {
	t := h.Threshold()
	if t == maxInt {
		return t
	}
	return t + 1
}

// ReverseKRanksCtx is ReverseKRanksParallel under a context, with the
// same cancellation contract as ReverseTopKCtx: every goroutine polls
// ctx between preference chunks, so cancellation is honoured within one
// chunk and the call returns ctx.Err() with no workers left behind.
func (gr *GIR) ReverseKRanksCtx(ctx context.Context, q vec.Vector, k, workers int, c *stats.Counters) ([]topk.Match, error) {
	return gr.ReverseKRanksTraced(ctx, q, k, workers, c, nil)
}

// ReverseKRanksTraced is ReverseKRanksCtx with per-query tracing; see
// ReverseTopKTraced for the span contract. The scan span additionally
// records the heap's admission count and final cutoff, which together
// show how quickly the Algorithm 3 bound tightened.
func (gr *GIR) ReverseKRanksTraced(ctx context.Context, q vec.Vector, k, workers int, c *stats.Counters, tr *trace.Trace) ([]topk.Match, error) {
	if workers == 0 {
		workers = -1 // positional 0 meant GOMAXPROCS; QueryOpts 0 means sequential
	}
	return gr.ReverseKRanksOpts(ctx, q, k, QueryOpts{Workers: workers, Counters: c, Trace: tr})
}

// ReverseKRanksOpts is GIRk-Rank (Algorithm 3) under a context with the
// execution knobs gathered in QueryOpts; every other ReverseKRanks
// variant is a wrapper over it.
func (gr *GIR) ReverseKRanksOpts(ctx context.Context, q vec.Vector, k int, opts QueryOpts) ([]topk.Match, error) {
	c, tr := opts.Counters, opts.Trace
	if tr != nil && c == nil {
		c = new(stats.Counters)
	}
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	if workers = normalizeWorkers(workers, gr.wm.Len()); workers > 1 {
		return gr.reverseKRanksParallel(ctx, q, k, workers, c, tr, opts.Reference)
	}
	done := ctx.Done()
	st := gr.getState()
	defer gr.putState(st)
	st.scratch.ref = opts.Reference
	h := st.heap
	h.Reset(k)
	sp := tr.StartSpan("scan")
	base := counterBaseline(sp, c)
	admits := 0
	var scanErr error
	for pos, wi := range gr.wg.MemberOrder() {
		if done != nil && pos%cancelChunk == 0 && pos > 0 {
			if err := ctx.Err(); err != nil {
				scanErr = err
				break
			}
		}
		if rnk, ok := gr.rankBounded(int(wi), q, admitCutoff(h), st.dom, st.scratch, c); ok {
			if h.Offer(topk.Match{WeightIndex: int(wi), Rank: rnk}) {
				admits++
			}
		}
	}
	if sp != nil {
		sp.SetInt("heap_admits", int64(admits))
		sp.SetInt("cutoff_final", cutoffAttr(admitCutoff(h)))
	}
	endScanSpan(sp, c, base, st.dom.count, -1, gr.wm.Len())
	if scanErr != nil {
		return nil, scanErr
	}
	msp := tr.StartSpan("merge")
	res := h.Results()
	msp.SetInt("results", int64(len(res))).End()
	return res, nil
}

// counterBaseline snapshots c when the scan span is live, so the span's
// attributes report this query's deltas even when the caller accumulates
// counters across queries. The copy is skipped entirely on untraced
// queries.
func counterBaseline(sp *trace.Span, c *stats.Counters) stats.Counters {
	if sp == nil || c == nil {
		return stats.Counters{}
	}
	return *c
}

// cutoffAttr maps the sentinel "no bound" cutoff to -1 for span
// attributes.
func cutoffAttr(cut int) int64 {
	if cut >= maxInt {
		return -1
	}
	return int64(cut)
}

// endScanSpan closes a scan (or scan.worker) span with the per-case
// breakdown of Section 3.1 accumulated since base. dominators < 0 and
// cutoff < 0 suppress the respective attribute (the RKR path reports its
// cutoff evolution separately; workers do not own the dominator count).
func endScanSpan(sp *trace.Span, c *stats.Counters, base stats.Counters, dominators, cutoff, weights int) {
	if sp == nil {
		return
	}
	if weights >= 0 {
		sp.SetInt("weights", int64(weights))
	}
	if dominators >= 0 {
		sp.SetInt("dominators", int64(dominators))
	}
	if cutoff >= 0 {
		sp.SetInt("cutoff_final", cutoffAttr(cutoff))
	}
	if c != nil {
		d := stats.Counters{
			Case1Filtered: c.Case1Filtered - base.Case1Filtered,
			Case2Filtered: c.Case2Filtered - base.Case2Filtered,
			Filtered:      c.Filtered - base.Filtered,
			Refinements:   c.Refinements - base.Refinements,
			BoundSums:     c.BoundSums - base.BoundSums,
			PairwiseMults: c.PairwiseMults - base.PairwiseMults,
		}
		sp.SetInt("case1_filtered", d.Case1Filtered)
		sp.SetInt("case2_filtered", d.Case2Filtered)
		sp.SetInt("case3_refined", d.Refinements)
		sp.SetInt("bound_sums", d.BoundSums)
		sp.SetInt("exact_scores", d.PairwiseMults)
		sp.SetFloat("filter_rate", d.FilterRate())
	}
	sp.End()
}
