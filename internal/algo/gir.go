package algo

import (
	"context"
	"fmt"
	"math"

	"gridrank/internal/grid"
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// GIR is the Grid-index algorithm of Section 4. Construction pre-computes
// the Grid-index (boundary-product table) and the approximate vectors
// P^(A) and W^(A); queries then scan the approximate vectors, decide most
// points from the Grid bounds alone (Cases 1 and 2 of Section 3.1, d table
// lookups and additions, zero multiplications), and compute exact scores
// only for the Case-3 candidates that survive.
type GIR struct {
	P []vec.Vector
	W []vec.Vector

	// DisableDomin turns off the Domin buffer (Algorithm 1's dominating-
	// point memoization). Queries stay correct; the flag exists for the
	// ablation experiment that measures what the buffer is worth.
	DisableDomin bool

	// Parallelism is the number of worker goroutines a single query
	// shards W across (see gir_parallel.go). 0 or 1 keeps the sequential
	// scan; values above 1 enable the intra-query worker pool. Results
	// are identical either way. The field is read-only configuration and
	// must not be changed while queries are in flight.
	Parallelism int

	g  grid.Bounder
	pa *grid.Index // P^(A)
	wa *grid.Index // W^(A)
}

// DefaultPartitions is the paper's default grid resolution n = 32
// (sufficient for >99% filtering up to d ≈ 20 by Theorem 1).
const DefaultPartitions = 32

// NewGIR builds the Grid-index for point attributes in [0, rangeP) with n
// partitions per axis and pre-computes both approximate vector sets.
//
// The weight axis is partitioned over [0, max observed weight component],
// not [0, 1]: the paper divides each axis over "the range of the
// attribute's values", and for simplex weights that range shrinks like
// 1/d — partitioning the full unit interval would leave every weight in
// the first couple of cells and make the upper bound useless in high
// dimensions.
func NewGIR(P, W []vec.Vector, rangeP float64, n int) *GIR {
	validateSets(P, W)
	if n < 1 {
		panic(fmt.Sprintf("algo: grid partitions %d < 1", n))
	}
	return NewGIRWithBounder(P, W, grid.New(n, rangeP, maxComponent(W)))
}

// maxComponent returns the largest vector component, used as the weight
// axis range. The result is nudged up one ulp so the maximum itself maps
// strictly inside the last cell.
func maxComponent(vs []vec.Vector) float64 {
	m := 0.0
	for _, v := range vs {
		for _, x := range v {
			if x > m {
				m = x
			}
		}
	}
	if m <= 0 {
		return 1
	}
	return math.Nextafter(m, math.Inf(1))
}

// NewGIRWithBounder builds GIR over any grid implementation — the paper's
// equal-width Grid or the adaptive quantile grid of its future work
// (grid.NewAdaptive) — and pre-computes both approximate vector sets.
func NewGIRWithBounder(P, W []vec.Vector, g grid.Bounder) *GIR {
	validateSets(P, W)
	return &GIR{
		P:  P,
		W:  W,
		g:  g,
		pa: grid.NewPointIndex(g, P),
		wa: grid.NewWeightIndex(g, W),
	}
}

// Name implements RTKAlgorithm and RKRAlgorithm.
func (gr *GIR) Name() string { return "GIR" }

// Grid exposes the underlying Grid-index (for diagnostics and the
// experiment harness).
func (gr *GIR) Grid() grid.Bounder { return gr.g }

// rankBounded is GInTop-k (Algorithm 1): it determines rank(w_i, q)
// bounded by cutoff, scanning P^(A) and classifying each point with the
// Grid bounds. ok is false when the rank reached cutoff (the paper's
// "return -1").
//
// Two deliberate deviations from the paper's pseudocode, both discussed in
// DESIGN.md: the Case-1 test uses strict U < f_w(q) so score ties never
// count against q (Algorithm 1 prints "≤", which would miscount a point
// whose score equals f_w(q) when the upper bound is tight), and the
// cutoff test is rnk ≥ cutoff, matching the prose ("whenever rnk reaches
// k") rather than the printed "rnk > k".
func (gr *GIR) rankBounded(wi int, q vec.Vector, cutoff int, dom *domin, scratch *girScratch, c *stats.Counters) (int, bool) {
	w := gr.W[wi]
	fq := vec.Dot(w, q)
	if c != nil {
		c.PairwiseMults++
	}
	rnk := dom.count
	if rnk >= cutoff {
		return cutoff, false
	}
	// Interleave the grid columns selected by w's approximate vector into
	// the flat per-query scratch: bnd[i·2n + 2·pc] is the lower addend and
	// bnd[i·2n + 2·pc + 1] the upper addend for dimension i, point cell pc
	// (Equations 3 and 4, column-wise). The two addends of a cell share a
	// cache line and the whole block is d·2n floats — L1-resident for the
	// paper's configurations.
	wa := gr.wa.Row(wi)
	d := len(wa)
	n2 := 2 * gr.g.N()
	bnd := scratch.bounds
	for i, wc := range wa {
		loCol := gr.g.LowerColumn(wc)
		upCol := gr.g.UpperColumn(wc)
		row := bnd[i*n2 : (i+1)*n2]
		for pc := range loCol {
			row[2*pc] = loCol[pc]
			row[2*pc+1] = upCol[pc]
		}
	}
	approx := gr.pa.Cells()
	for pj := range gr.P {
		if dom.has(pj) {
			continue
		}
		pa := approx[pj*d : pj*d+d]
		if c != nil {
			c.BoundSums++
			c.ApproxVisited++
		}
		// One fused pass evaluates both bounds: adjacent loads, one loop.
		// (Computing the lower bound lazily, as Algorithm 1 suggests,
		// measures slower: the second pass re-pays the loop for every
		// non-Case-1 point.)
		var u, l float64
		off := 0
		for _, pc := range pa {
			j := off + 2*int(pc)
			l += bnd[j]
			u += bnd[j+1]
			off += n2
		}
		if u < fq { // Case 1: p precedes q
			rnk++
			if c != nil {
				c.Filtered++
			}
			if !gr.DisableDomin {
				dom.observe(pj, gr.P[pj], q)
			}
			if rnk >= cutoff {
				return cutoff, false
			}
			continue
		}
		if l <= fq {
			// Case 3: incomparable — refine inline with the exact score.
			// Algorithm 1 collects candidates and refines after the scan,
			// but refining immediately keeps rnk an exact running count,
			// so the cutoff fires at the same pair as SIM's scan (this is
			// what makes the paper's Figure 11 observation — GIR and SIM
			// perform the same number of pair accesses — hold).
			if c != nil {
				c.PairwiseMults++
				c.Refinements++
				c.PointsVisited++
			}
			if vec.Dot(w, gr.P[pj]) < fq {
				rnk++
				if !gr.DisableDomin {
					dom.observe(pj, gr.P[pj], q)
				}
				if rnk >= cutoff {
					return cutoff, false
				}
			}
		} else if c != nil { // Case 2: q precedes p
			c.Filtered++
		}
	}
	return rnk, true
}

// girScratch holds the per-query buffer rankBounded reuses across weight
// vectors: the interleaved (lower, upper) column pairs, d·2n floats.
type girScratch struct {
	bounds []float64
}

func (gr *GIR) newScratch() *girScratch {
	return &girScratch{
		bounds: make([]float64, gr.pa.Dim()*2*gr.g.N()),
	}
}

// cancelChunk is the cancellation granularity of both scan paths: the
// sequential loops poll ctx.Err() every cancelChunk weight vectors, and
// the parallel workers bound their claim chunks to at most cancelChunk
// weights and poll between claims. One chunk is the most work a
// cancelled query performs per goroutine before returning, and at ~|P|
// operations per weight it amortizes the poll to nothing.
const cancelChunk = 1024

// ReverseTopK is GIRTop-k (Algorithm 2), sharded across gr.Parallelism
// workers when configured above 1.
func (gr *GIR) ReverseTopK(q vec.Vector, k int, c *stats.Counters) []int {
	res, _ := gr.ReverseTopKCtx(context.Background(), q, k, gr.defaultWorkers(), c)
	return res
}

// ReverseTopKParallel is ReverseTopK with an explicit worker count
// overriding gr.Parallelism: 1 runs the sequential scan, values above 1
// shard W across that many goroutines, and 0 or negative means
// GOMAXPROCS. The answer is identical for every worker count.
func (gr *GIR) ReverseTopKParallel(q vec.Vector, k, workers int, c *stats.Counters) []int {
	res, _ := gr.ReverseTopKCtx(context.Background(), q, k, workers, c)
	return res
}

// defaultWorkers maps gr.Parallelism to an explicit worker count: values
// below 1 mean the sequential scan.
func (gr *GIR) defaultWorkers() int {
	if gr.Parallelism < 1 {
		return 1
	}
	return gr.Parallelism
}

// ReverseTopKCtx is ReverseTopKParallel under a context: the scan polls
// ctx between preference chunks (cancelChunk weights) on every goroutine,
// so a cancelled or expired context stops the query within one chunk and
// returns ctx.Err() with no workers left behind. The answer is identical
// for every worker count; a cancelled query returns a nil answer.
func (gr *GIR) ReverseTopKCtx(ctx context.Context, q vec.Vector, k, workers int, c *stats.Counters) ([]int, error) {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers = normalizeWorkers(workers, len(gr.W)); workers > 1 {
		return gr.reverseTopKParallel(ctx, q, k, workers, c)
	}
	done := ctx.Done()
	dom := newDomin(len(gr.P))
	scratch := gr.newScratch()
	var res []int
	for wi := range gr.W {
		if done != nil && wi%cancelChunk == 0 && wi > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if _, ok := gr.rankBounded(wi, q, k, dom, scratch, c); ok {
			res = append(res, wi)
		}
		// Algorithm 2 lines 7–8: with k dominators, no weight can place q
		// in its top-k.
		if dom.count >= k {
			return nil, nil
		}
	}
	return res, nil
}

// ReverseKRanks is GIRk-Rank (Algorithm 3): the size-k heap's worst
// retained rank (minRank) is passed to GInTop-k as the filtering cutoff
// and tightens as better weights are found. When gr.Parallelism exceeds
// 1, the scan is sharded and the cutoff becomes a shared watermark.
func (gr *GIR) ReverseKRanks(q vec.Vector, k int, c *stats.Counters) []topk.Match {
	res, _ := gr.ReverseKRanksCtx(context.Background(), q, k, gr.defaultWorkers(), c)
	return res
}

// ReverseKRanksParallel is ReverseKRanks with an explicit worker count
// overriding gr.Parallelism: 1 runs the sequential scan, values above 1
// shard W across that many goroutines, and 0 or negative means
// GOMAXPROCS. The answer is identical for every worker count.
func (gr *GIR) ReverseKRanksParallel(q vec.Vector, k, workers int, c *stats.Counters) []topk.Match {
	res, _ := gr.ReverseKRanksCtx(context.Background(), q, k, workers, c)
	return res
}

// ReverseKRanksCtx is ReverseKRanksParallel under a context, with the
// same cancellation contract as ReverseTopKCtx: every goroutine polls
// ctx between preference chunks, so cancellation is honoured within one
// chunk and the call returns ctx.Err() with no workers left behind.
func (gr *GIR) ReverseKRanksCtx(ctx context.Context, q vec.Vector, k, workers int, c *stats.Counters) ([]topk.Match, error) {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers = normalizeWorkers(workers, len(gr.W)); workers > 1 {
		return gr.reverseKRanksParallel(ctx, q, k, workers, c)
	}
	done := ctx.Done()
	h := topk.NewKRankHeap(k)
	dom := newDomin(len(gr.P))
	scratch := gr.newScratch()
	for wi := range gr.W {
		if done != nil && wi%cancelChunk == 0 && wi > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if rnk, ok := gr.rankBounded(wi, q, h.Threshold(), dom, scratch, c); ok {
			h.Offer(topk.Match{WeightIndex: wi, Rank: rnk})
		}
	}
	return h.Results(), nil
}
