// Package algo implements every query algorithm of the paper:
//
//   - Brute: the exact reference (no pruning), used as ground truth.
//   - SIM: the simple scan with the Domin buffer and early termination
//     (Section 6.1's baseline).
//   - GIR: the Grid-index algorithms of Section 4 — GInTop-k (Alg. 1),
//     GIRTop-k (Alg. 2) and GIRk-Rank (Alg. 3) — the paper's contribution.
//   - BBR: branch-and-bound reverse top-k over two R-trees (Vlachou et
//     al. SIGMOD'13), the paper's tree-based RTK comparator.
//   - MPA: marked pruning approach for reverse k-ranks over a W-histogram
//     and a P R-tree (Zhang et al. VLDB'14), the RKR comparator.
//   - RTA: the threshold-buffer reverse top-k of Vlachou et al. ICDE'10,
//     an additional related-work baseline.
//
// All algorithms implement identical semantics (see the package-level
// contract below) and are cross-validated against Brute in the tests.
//
// # Query contract
//
// rank(w, q) is the number of points of P whose score under w is strictly
// below f_w(q); ties never count against q (the q-favouring reading of
// the paper's Definition 2).
//
// ReverseTopK(q, k) returns the indexes of all w with rank(w, q) < k, in
// ascending order.
//
// ReverseKRanks(q, k) returns the k weights with the smallest rank, ties
// broken toward smaller weight indexes, ordered by (rank, index).
// When |W| < k, all weights are returned.
//
// Algorithms are safe for concurrent queries: all per-query state is
// allocated per call.
package algo

import (
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// RTKAlgorithm answers reverse top-k queries.
type RTKAlgorithm interface {
	Name() string
	// ReverseTopK returns the ascending indexes of all weights that place
	// q inside their top-k.
	ReverseTopK(q vec.Vector, k int, c *stats.Counters) []int
}

// RKRAlgorithm answers reverse k-ranks queries.
type RKRAlgorithm interface {
	Name() string
	// ReverseKRanks returns the k best (weight, rank) matches for q.
	ReverseKRanks(q vec.Vector, k int, c *stats.Counters) []topk.Match
}

// domin is the Domin buffer of Algorithm 1: the set of points known to
// dominate q (strictly smaller on every attribute), which therefore rank
// above q under every legal weight vector. It memoizes dominance checks so
// each point is tested at most once per query.
type domin struct {
	dominates []bool
	checked   []bool
	count     int
	// shared, when non-nil, receives every first discovery so the
	// parallel GIR workers can maintain an exact distinct-dominator count
	// across their private buffers (see gir_parallel.go).
	shared *sharedDomin
	// Group wiring (nil for the ungrouped SIM/Sparse scans). groupOf maps
	// a point to its cell group; groupLive counts each group's members
	// NOT yet known to dominate q — it is the single load the grouped
	// scan's hot loop makes per group, initialized to the group sizes and
	// decremented on dominator discovery; groupChecked counts memoized
	// dominance tests per group, so a fully-checked group skips the
	// member-observe loop.
	groupOf      []int32
	groupSizes   []int32 // immutable template groupLive resets from
	groupLive    []int32
	groupChecked []int32
}

func newDomin(n int) *domin {
	return &domin{dominates: make([]bool, n), checked: make([]bool, n)}
}

// reset clears the buffer for pooled reuse by a new query.
func (d *domin) reset() {
	clear(d.dominates)
	clear(d.checked)
	d.count = 0
	d.shared = nil
	copy(d.groupLive, d.groupSizes)
	clear(d.groupChecked)
}

// has reports whether point pj is a known dominator of q.
func (d *domin) has(pj int) bool { return d.dominates[pj] }

// observe tests dominance of p over q once; subsequent calls are free.
func (d *domin) observe(pj int, p, q vec.Vector) {
	if d.checked[pj] {
		return
	}
	d.checked[pj] = true
	if d.groupChecked != nil {
		d.groupChecked[d.groupOf[pj]]++
	}
	if vec.Dominates(p, q) {
		d.dominates[pj] = true
		d.count++
		if d.groupLive != nil {
			d.groupLive[d.groupOf[pj]]--
		}
		if d.shared != nil {
			d.shared.claim(pj)
		}
	}
}

// maxInt is the unbounded cutoff used before a k-ranks heap fills.
const maxInt = int(^uint(0) >> 1)
