package algo

import (
	"fmt"
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

// parallelWorkerCounts are the intra-query pool sizes the tests sweep.
var parallelWorkerCounts = []int{2, 4, 8}

// TestParallelCrossValidation is the race-proving property test of the
// parallel execution path: across 50+ randomized datasets (dimensions,
// sizes, grid resolutions and correlation structures all vary), parallel
// GIR at every worker count must return point-for-point identical
// RTK/RKR answers to sequential GIR and to brute force, and the merged
// per-worker counters must satisfy the Stats invariants. Run it under
// -race to turn every missing synchronization into a failure.
func TestParallelCrossValidation(t *testing.T) {
	datasets := 54
	if testing.Short() {
		datasets = 16
	}
	pdists := []dataset.Distribution{dataset.Uniform, dataset.Clustered, dataset.AntiCorrelated, dataset.Normal}
	wdists := []dataset.Distribution{dataset.Uniform, dataset.Clustered, dataset.Exponential}
	for i := 0; i < datasets; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		pd := pdists[i%len(pdists)]
		wd := wdists[i%len(wdists)]
		d := 2 + rng.Intn(6)               // 2..7
		nP := 40 + rng.Intn(160)           // 40..199
		nW := 30 + rng.Intn(140)           // 30..169
		n := []int{4, 16, 32}[rng.Intn(3)] // grid resolution
		name := fmt.Sprintf("%02d-%s-%s-d%d-P%d-W%d-n%d", i, pd, wd, d, nP, nW, n)
		t.Run(name, func(t *testing.T) {
			P := dataset.GenerateProducts(rng, pd, nP, d, dataset.DefaultRange)
			W := dataset.GenerateWeights(rng, wd, nW, d)
			brute := NewBrute(P.Points, W.Points)
			gir := NewGIR(P.Points, W.Points, P.Range, n)
			for qi := 0; qi < 2; qi++ {
				var q vec.Vector
				if qi == 0 {
					q = P.Points[rng.Intn(nP)]
				} else {
					q = make(vec.Vector, d) // external query point
					for j := range q {
						q[j] = rng.Float64() * P.Range
					}
				}
				for _, k := range []int{1, 7} {
					wantRTK := brute.ReverseTopK(q, k, nil)
					seqRTK := gir.ReverseTopK(q, k, nil)
					if !equalInts(seqRTK, wantRTK) {
						t.Fatalf("sequential GIR RTK k=%d disagrees with brute: got %v want %v", k, seqRTK, wantRTK)
					}
					wantRKR := brute.ReverseKRanks(q, k, nil)
					seqRKR := gir.ReverseKRanks(q, k, nil)
					if !equalMatches(seqRKR, wantRKR) {
						t.Fatalf("sequential GIR RKR k=%d disagrees with brute: got %+v want %+v", k, seqRKR, wantRKR)
					}
					for _, workers := range parallelWorkerCounts {
						var c stats.Counters
						got := gir.ReverseTopKParallel(q, k, workers, &c)
						if !equalInts(got, wantRTK) {
							t.Fatalf("parallel RTK k=%d workers=%d: got %v want %v", k, workers, got, wantRTK)
						}
						checkStatsInvariants(t, &c)
						c.Reset()
						gotKR := gir.ReverseKRanksParallel(q, k, workers, &c)
						if !equalMatches(gotKR, wantRKR) {
							t.Fatalf("parallel RKR k=%d workers=%d: got %+v want %+v", k, workers, gotKR, wantRKR)
						}
						checkStatsInvariants(t, &c)
					}
				}
			}
		})
	}
}

// checkStatsInvariants asserts the accounting identities that must
// survive the per-worker counter merge under grouped counting (see
// DESIGN.md §9): ApproxVisited and BoundSums count per GROUP bound
// evaluation (one fused pass per distinct cell, so they stay equal),
// while Filtered and Refinements count per POINT — a visited group with
// live members decides at least one point, so the per-point tallies are
// at least the per-group ones, and the derived filter rate is a valid
// fraction.
func checkStatsInvariants(t *testing.T, c *stats.Counters) {
	t.Helper()
	if c.Filtered+c.Refinements < c.ApproxVisited {
		t.Fatalf("merged stats: Filtered(%d) + Refined(%d) < groups examined (%d)",
			c.Filtered, c.Refinements, c.ApproxVisited)
	}
	if c.BoundSums != c.ApproxVisited {
		t.Fatalf("merged stats: BoundSums(%d) != ApproxVisited(%d)", c.BoundSums, c.ApproxVisited)
	}
	if r := c.FilterRate(); r < 0 || r > 1 {
		t.Fatalf("merged stats: FilterRate %v outside [0,1]", r)
	}
	if c.Queries != 1 {
		t.Fatalf("merged stats: Queries = %d, want 1 (workers must not each count a query)", c.Queries)
	}
}

// TestParallelDominShortCircuit pins the sharded Algorithm 2 early exit:
// a query dominated by >= k points yields the empty answer at every
// worker count, and the distinct-dominator dedup means the exit is taken
// (bounded work), not just eventually correct.
func TestParallelDominShortCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 400, 4, 100)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 200, 4)
	q := vec.Vector{99, 99, 99, 99} // dominated by nearly everything
	gir := NewGIR(P.Points, W.Points, P.Range, 32)
	var cSeq stats.Counters
	want := gir.ReverseTopK(q, 5, &cSeq)
	if len(want) != 0 {
		t.Fatalf("corner query should have empty RTK, got %v", want)
	}
	for _, workers := range parallelWorkerCounts {
		var c stats.Counters
		if got := gir.ReverseTopKParallel(q, 5, workers, &c); len(got) != 0 {
			t.Fatalf("workers=%d: corner query RTK = %v, want empty", workers, got)
		}
		// The early exit must keep the parallel scan within a small
		// multiple of the sequential work (each worker can overshoot by
		// at most its in-flight chunk).
		if c.PairwiseMults > (cSeq.PairwiseMults+1)*int64(workers)*64 {
			t.Errorf("workers=%d: early exit not effective: %d mults vs sequential %d",
				workers, c.PairwiseMults, cSeq.PairwiseMults)
		}
	}
}

// TestParallelWatermarkPruning checks that the shared RKR watermark
// actually prunes: the merged pairwise-multiplication count at 4 workers
// must stay within a small factor of the sequential count, not degrade
// to the unpruned scan.
func TestParallelWatermarkPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 1500, 5, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 800, 5)
	gir := NewGIR(P.Points, W.Points, P.Range, 32)
	q := P.Points[3]
	var cSeq, cPar, cNone stats.Counters
	want := gir.ReverseKRanks(q, 10, &cSeq)
	got := gir.ReverseKRanksParallel(q, 10, 4, &cPar)
	if !equalMatches(got, want) {
		t.Fatalf("parallel RKR disagrees: got %+v want %+v", got, want)
	}
	// Reference for "no pruning at all": cutoff never tightens below the
	// heap bound when every weight is evaluated with an infinite cutoff.
	// Use brute force's exhaustive count as the ceiling.
	NewBrute(P.Points, W.Points).ReverseKRanks(q, 10, &cNone)
	if cPar.PairwiseMults >= cNone.PairwiseMults {
		t.Errorf("watermark ineffective: parallel %d mults >= unpruned %d", cPar.PairwiseMults, cNone.PairwiseMults)
	}
	if cPar.PairwiseMults > cSeq.PairwiseMults*6 {
		t.Errorf("watermark too loose: parallel %d mults vs sequential %d", cPar.PairwiseMults, cSeq.PairwiseMults)
	}
}

// TestNormalizeWorkers pins the worker-count resolution rules.
func TestNormalizeWorkers(t *testing.T) {
	if got := normalizeWorkers(4, 100); got != 4 {
		t.Errorf("normalizeWorkers(4, 100) = %d, want 4", got)
	}
	if got := normalizeWorkers(8, 3); got != 3 {
		t.Errorf("normalizeWorkers(8, 3) = %d, want 3 (capped at |W|)", got)
	}
	if got := normalizeWorkers(0, 100); got < 1 {
		t.Errorf("normalizeWorkers(0, 100) = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := normalizeWorkers(-1, 100); got < 1 {
		t.Errorf("normalizeWorkers(-1, 100) = %d, want >= 1", got)
	}
}

// TestSharedDominDedup verifies the distinct-dominator count never
// double-counts a point claimed from multiple workers' buffers.
func TestSharedDominDedup(t *testing.T) {
	s := newSharedDomin(200)
	for i := 0; i < 3; i++ { // repeated claims are idempotent
		s.claim(0)
		s.claim(63)
		s.claim(64)
		s.claim(199)
	}
	if got := s.count.Load(); got != 4 {
		t.Errorf("distinct dominator count = %d, want 4", got)
	}
}

// TestRankWatermark pins the CAS-min semantics and the cutoff combine.
func TestRankWatermark(t *testing.T) {
	wm := newRankWatermark()
	if got := wm.cutoff(50); got != 50 {
		t.Errorf("initial cutoff(50) = %d, want 50 (watermark unset)", got)
	}
	wm.tighten(30)
	wm.tighten(40) // looser value must not widen it
	if got := wm.v.Load(); got != 30 {
		t.Errorf("watermark = %d, want 30", got)
	}
	if got := wm.cutoff(50); got != 31 {
		t.Errorf("cutoff(50) = %d, want 31 (watermark + 1)", got)
	}
	if got := wm.cutoff(10); got != 10 {
		t.Errorf("cutoff(10) = %d, want 10 (local bound tighter)", got)
	}
}

// TestParallelEdgeCases mirrors the sequential edge cases on the
// parallel path: tiny W, k larger than both sets, worker counts beyond
// |W|, and the Parallelism field dispatch.
func TestParallelEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 60, 3, 100)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 5, 3)
	gir := NewGIR(P.Points, W.Points, P.Range, 16)
	q := P.Points[0]
	want := gir.ReverseKRanks(q, 9, nil) // k > |W|: all weights
	if len(want) != 5 {
		t.Fatalf("want all 5 weights, got %d", len(want))
	}
	for _, workers := range []int{2, 7, 64} {
		if got := gir.ReverseKRanksParallel(q, 9, workers, nil); !equalMatches(got, want) {
			t.Errorf("workers=%d k>|W|: got %+v want %+v", workers, got, want)
		}
	}
	if got := gir.ReverseTopKParallel(q, 0, 4, nil); got != nil {
		t.Errorf("k=0 parallel RTK should return nil, got %v", got)
	}
	if got := gir.ReverseKRanksParallel(q, -3, 4, nil); got != nil {
		t.Errorf("negative k parallel RKR should return nil, got %v", got)
	}
	// The Parallelism field routes the plain methods through the pool.
	seqRTK := gir.ReverseTopK(q, 3, nil)
	gir.Parallelism = 4
	defer func() { gir.Parallelism = 0 }()
	if got := gir.ReverseTopK(q, 3, nil); !equalInts(got, seqRTK) {
		t.Errorf("Parallelism=4 dispatch: got %v want %v", got, seqRTK)
	}
}
