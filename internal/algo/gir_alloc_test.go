package algo

import (
	"context"
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/vec"
)

// TestSteadyStateAllocations proves the zero-allocation query path: once
// the state pool is warm, a sequential query allocates only its result
// slice — everything else (Domin buffer, bound scratch, heap, collection
// buffer) is recycled. The bound is 2 to absorb the occasional pool miss
// after a GC cycle; the typical count is 1 (RKR) and 0 or 1 (RTK).
func TestSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector's instrumentation allocates, skewing AllocsPerRun")
	}
	rng := rand.New(rand.NewSource(42))
	P := dataset.GenerateProducts(rng, dataset.Clustered, 500, 6, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 200, 6)
	gir := NewGIR(P.Points, W.Points, P.Range, 32)
	// A query with a non-empty RTK answer, so the result-copy path runs.
	q := make(vec.Vector, 6) // the origin is in everyone's top-k
	for i := 0; i < 3; i++ { // warm the pool
		gir.ReverseKRanks(q, 10, nil)
		gir.ReverseTopK(q, 10, nil)
	}
	if got := testing.AllocsPerRun(20, func() { gir.ReverseKRanks(q, 10, nil) }); got > 2 {
		t.Errorf("steady-state RKR allocates %v times per query, want <= 2", got)
	}
	if got := testing.AllocsPerRun(20, func() { gir.ReverseTopK(q, 10, nil) }); got > 2 {
		t.Errorf("steady-state RTK allocates %v times per query, want <= 2", got)
	}
	// The traced entrypoints with a nil trace must match: an untraced
	// query through the tracing-aware code path pays nothing.
	ctx := context.Background()
	if got := testing.AllocsPerRun(20, func() {
		if _, err := gir.ReverseKRanksTraced(ctx, q, 10, 1, nil, nil); err != nil {
			t.Fatal(err)
		}
	}); got > 2 {
		t.Errorf("nil-trace RKR allocates %v times per query, want <= 2", got)
	}
	if got := testing.AllocsPerRun(20, func() {
		if _, err := gir.ReverseTopKTraced(ctx, q, 10, 1, nil, nil); err != nil {
			t.Fatal(err)
		}
	}); got > 2 {
		t.Errorf("nil-trace RTK allocates %v times per query, want <= 2", got)
	}
}
