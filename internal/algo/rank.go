package algo

import "gridrank/internal/vec"

// RankOf evaluates rank(W[wi], q) — the number of points scoring
// strictly below q under preference wi — bounded by cutoff, with
// rankBounded's contract: ok reports that the exact rank is below
// cutoff; when the running count reaches cutoff the scan stops and
// returns (cutoff, false). A cutoff <= 0 means unbounded (the exact
// rank is always returned).
//
// This is the answer cache's splice oracle: a preference insert asks,
// per cached entry, whether the new preference wins admission — one
// bounded rank evaluation instead of a full reverse scan. The call
// borrows a pooled query state, so it is allocation-free in steady
// state and safe for concurrent use.
func (gr *GIR) RankOf(wi int, q vec.Vector, cutoff int) (int, bool) {
	if cutoff <= 0 {
		cutoff = maxInt
	}
	st := gr.getState()
	defer gr.putState(st)
	return gr.rankBounded(wi, q, cutoff, st.dom, st.scratch, nil)
}
