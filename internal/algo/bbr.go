package algo

import (
	"sort"

	"gridrank/internal/rtree"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

// BBR is the branch-and-bound reverse top-k algorithm (Vlachou et al.,
// SIGMOD 2013), the paper's state-of-the-art tree-based RTK comparator:
// both P and W are indexed in R-trees; W-tree nodes are qualified or
// disqualified wholesale using group-level rank bounds computed against
// the P-tree, and only undecided leaf weights fall back to individual
// branch-and-bound rank counting.
type BBR struct {
	P []vec.Vector
	W []vec.Vector

	pt *rtree.Tree // R-tree over P
	wt *rtree.Tree // R-tree over W
}

// NewBBR bulk-loads both R-trees with the given node capacity.
func NewBBR(P, W []vec.Vector, capacity int) *BBR {
	validateSets(P, W)
	return &BBR{
		P:  P,
		W:  W,
		pt: rtree.Bulk(P, capacity),
		wt: rtree.Bulk(W, capacity),
	}
}

// Name implements RTKAlgorithm.
func (b *BBR) Name() string { return "BBR" }

// PointTree exposes the P R-tree (for the harness's Table 3 / Figure 15a
// instrumentation).
func (b *BBR) PointTree() *rtree.Tree { return b.pt }

// ReverseTopK descends the W-tree. For a node covering weight box
// [wlo, whi]:
//
//   - if at least k points beat q for EVERY weight in the box, every
//     weight under the node is disqualified and the node is pruned;
//   - if fewer than k points beat q for even SOME weight in the box, every
//     weight under the node is qualified and added wholesale;
//   - otherwise the node is expanded, with exact bounded rank counting
//     (against the P-tree) at the leaves.
func (b *BBR) ReverseTopK(q vec.Vector, k int, c *stats.Counters) []int {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil
	}
	var res []int
	b.visitWNode(b.wt.Root(), q, k, &res, c)
	sort.Ints(res)
	return res
}

func (b *BBR) visitWNode(n *rtree.Node, q vec.Vector, k int, res *[]int, c *stats.Counters) {
	if c != nil {
		c.NodesVisited++
	}
	wlo, whi := n.MBR.Lo, n.MBR.Hi
	// Group-level lower bound on every weight's rank.
	if countBeatAll(b.pt.Root(), q, wlo, whi, k, c) >= k {
		if c != nil {
			c.WeightsPruned += int64(n.Size)
		}
		return
	}
	// Group-level upper bound: if even the loosest rank stays below k,
	// every weight in the box qualifies.
	if countBeatSome(b.pt.Root(), q, wlo, whi, k, c) < k {
		appendWeights(n, res)
		return
	}
	if n.Leaf() {
		for _, e := range n.Entries {
			fq := vec.Dot(e.Point, q)
			if c != nil {
				c.PairwiseMults++
			}
			if _, ok := treeRankBounded(b.pt.Root(), e.Point, fq, k, c); ok {
				*res = append(*res, e.Index)
			}
		}
		return
	}
	for _, child := range n.Children {
		b.visitWNode(child, q, k, res, c)
	}
}

// appendWeights collects every weight index under n.
func appendWeights(n *rtree.Node, res *[]int) {
	if n.Leaf() {
		for _, e := range n.Entries {
			*res = append(*res, e.Index)
		}
		return
	}
	for _, c := range n.Children {
		appendWeights(c, res)
	}
}
