//go:build race

package algo

// raceEnabled reports whether the race detector is compiled in; tests
// asserting exact allocation counts skip under it, since its
// instrumentation allocates on its own.
const raceEnabled = true
