package algo

// Copy-on-write derivation of a GIR instance under point/weight
// insertion and deletion. Each With* method returns a NEW *GIR for the
// mutated data set and leaves the receiver fully usable: the two
// instances share everything the mutation did not touch — the grid
// table always, and the whole untouched side (a point mutation reuses
// wa/wg as-is, a weight mutation reuses pa/pg). The derived GIR starts
// with an empty query-state pool, so pooled Domin buffers and group
// counters are always sized for their own epoch.
//
// The caller owns the range policy: these methods require the new
// vector to fall inside the existing grid ranges (an out-of-range
// insert would silently clamp into the last cell and break the upper
// bound). gridrank.Index checks WeightRange/PointRange first and falls
// back to a full rebuild when the range must grow or shrink.

import (
	"gridrank/internal/grid"
	"gridrank/internal/vec"
)

// PointRange returns the grid's point-axis range r_p, or 0 when the
// bounder does not expose one (adaptive grids) — callers must then
// rebuild instead of deriving.
func (gr *GIR) PointRange() float64 {
	if g, ok := gr.g.(*grid.Grid); ok {
		return g.RangeP()
	}
	return 0
}

// WeightRange returns the grid's weight-axis range r_w, or 0 when the
// bounder does not expose one.
func (gr *GIR) WeightRange() float64 {
	if g, ok := gr.g.(*grid.Grid); ok {
		return g.RangeW()
	}
	return 0
}

// WithAppendedPoint derives a GIR over pm, which must be the current
// point matrix plus one appended row, every attribute inside [0,
// PointRange()).
func (gr *GIR) WithAppendedPoint(pm *vec.Matrix) *GIR {
	pa := gr.pa.WithAppendedPoint(pm.Row(pm.Len() - 1))
	pg := gr.pg.WithAppended(pa)
	return &GIR{
		pm: pm, wm: gr.wm,
		DisableDomin: gr.DisableDomin, Parallelism: gr.Parallelism,
		g: gr.g, pa: pa, wa: gr.wa, pg: pg, wg: gr.wg,
		packedBits: gr.packedBits, pk: pg.Packed(),
	}
}

// WithRemovedPoint derives a GIR over pm, the current point matrix
// without row i.
func (gr *GIR) WithRemovedPoint(pm *vec.Matrix, i int) *GIR {
	pa := gr.pa.WithRemoved(i)
	pg := gr.pg.WithRemoved(pa, i)
	return &GIR{
		pm: pm, wm: gr.wm,
		DisableDomin: gr.DisableDomin, Parallelism: gr.Parallelism,
		g: gr.g, pa: pa, wa: gr.wa, pg: pg, wg: gr.wg,
		packedBits: gr.packedBits, pk: pg.Packed(),
	}
}

// WithAppendedWeight derives a GIR over wm, the current weight matrix
// plus one appended row, every component inside [0, WeightRange()).
func (gr *GIR) WithAppendedWeight(wm *vec.Matrix) *GIR {
	wa := gr.wa.WithAppendedWeight(wm.Row(wm.Len() - 1))
	return &GIR{
		pm: gr.pm, wm: wm,
		DisableDomin: gr.DisableDomin, Parallelism: gr.Parallelism,
		g: gr.g, pa: gr.pa, wa: wa, pg: gr.pg, wg: gr.wg.WithAppended(wa),
		packedBits: gr.packedBits, pk: gr.pk,
	}
}

// WithRemovedWeight derives a GIR over wm, the current weight matrix
// without row i.
func (gr *GIR) WithRemovedWeight(wm *vec.Matrix, i int) *GIR {
	wa := gr.wa.WithRemoved(i)
	return &GIR{
		pm: gr.pm, wm: wm,
		DisableDomin: gr.DisableDomin, Parallelism: gr.Parallelism,
		g: gr.g, pa: gr.pa, wa: wa, pg: gr.pg, wg: gr.wg.WithRemoved(wa, i),
		packedBits: gr.packedBits, pk: gr.pk,
	}
}
