package algo

import (
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// SIM is the optimized simple scan of Section 6.1: for each weight vector
// it scans P computing exact scores, maintains the Domin buffer of points
// known to dominate q (they count into every later rank for free), and
// terminates a weight's scan as soon as its rank can no longer satisfy the
// query condition. The only difference between SIM and GIR is that SIM
// computes every score directly instead of filtering with Grid bounds.
type SIM struct {
	P []vec.Vector
	W []vec.Vector

	// DisableDomin turns off the Domin buffer, for the ablation study.
	DisableDomin bool
}

// NewSIM validates shapes and returns the scan baseline.
func NewSIM(P, W []vec.Vector) *SIM {
	validateSets(P, W)
	return &SIM{P: P, W: W}
}

// Name implements RTKAlgorithm and RKRAlgorithm.
func (s *SIM) Name() string { return "SIM" }

// rankBounded counts q's rank under w by scanning P, skipping known
// dominators (pre-counted) and stopping at cutoff. ok is false when the
// cutoff was reached.
func (s *SIM) rankBounded(w, q vec.Vector, cutoff int, dom *domin, c *stats.Counters) (int, bool) {
	fq := vec.Dot(w, q)
	if c != nil {
		c.PairwiseMults++
	}
	rnk := dom.count
	if rnk >= cutoff {
		return cutoff, false
	}
	for pj, p := range s.P {
		if dom.has(pj) {
			continue
		}
		if c != nil {
			c.PairwiseMults++
			c.PointsVisited++
		}
		if vec.Dot(w, p) < fq {
			rnk++
			if !s.DisableDomin {
				dom.observe(pj, p, q)
			}
			if rnk >= cutoff {
				return cutoff, false
			}
		}
	}
	return rnk, true
}

// ReverseTopK returns all weight indexes whose rank of q is below k.
func (s *SIM) ReverseTopK(q vec.Vector, k int, c *stats.Counters) []int {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil
	}
	dom := newDomin(len(s.P))
	var res []int
	for wi, w := range s.W {
		if _, ok := s.rankBounded(w, q, k, dom, c); ok {
			res = append(res, wi)
		}
		// Algorithm 2's global exit: k dominators imply an empty answer
		// for every weight vector.
		if dom.count >= k {
			return nil
		}
	}
	return res
}

// ReverseKRanks returns the k weights ranking q best, using the
// self-refining threshold of Algorithm 3 to bound each scan.
func (s *SIM) ReverseKRanks(q vec.Vector, k int, c *stats.Counters) []topk.Match {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil
	}
	h := topk.NewKRankHeap(k)
	dom := newDomin(len(s.P))
	for wi, w := range s.W {
		if rnk, ok := s.rankBounded(w, q, h.Threshold(), dom, c); ok {
			h.Offer(topk.Match{WeightIndex: wi, Rank: rnk})
		}
	}
	return h.Results()
}
