package algo

// Cancellation contract of the context-first scan: a dead context stops
// the query within one preference chunk per goroutine, returns ctx.Err(),
// leaks no workers, and still merges the counters for the work performed.

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

// countdownCtx is a deterministic cancellation source: its Err() returns
// nil for the first `after` calls and context.Canceled from then on, so
// tests can pin exactly which poll observes the cancellation without any
// timing dependence. Done() is non-nil so the scan's fast path (nil Done
// means an uncancellable context) does not skip polling.
type countdownCtx struct {
	context.Context // Background, for Deadline/Value
	mu              sync.Mutex
	calls, after    int
	done            chan struct{}
}

func newCountdownCtx(after int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), after: after, done: make(chan struct{})}
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// ctxTestGIR builds a GIR over a preference set far larger than one
// cancellation chunk, so a chunk-bounded stop is distinguishable from a
// full scan.
func ctxTestGIR(t *testing.T, nW int) (*GIR, vec.Vector) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 60, 4, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, nW, 4)
	return NewGIR(P.Points, W.Points, P.Range, 16), P.Points[3]
}

func TestSequentialCancellationIsChunkBounded(t *testing.T) {
	const nW = 20 * cancelChunk
	gir, q := ctxTestGIR(t, nW)
	for _, tc := range []struct {
		name string
		run  func(ctx context.Context, c *stats.Counters) error
	}{
		{"rtk", func(ctx context.Context, c *stats.Counters) error {
			res, err := gir.ReverseTopKCtx(ctx, q, 10, 1, c)
			if res != nil {
				t.Errorf("cancelled RTK returned a partial answer: %v", res)
			}
			return err
		}},
		{"rkr", func(ctx context.Context, c *stats.Counters) error {
			res, err := gir.ReverseKRanksCtx(ctx, q, 10, 1, c)
			if res != nil {
				t.Errorf("cancelled RKR returned a partial answer: %v", res)
			}
			return err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Call 1 is the upfront check; call 2 is the poll at weight
			// cancelChunk. The scan must stop there, having processed
			// exactly one chunk of the 20.
			ctx := newCountdownCtx(1)
			var c stats.Counters
			if err := tc.run(ctx, &c); err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// The counters count per-product decisions, so one chunk of
			// preferences costs at most cancelChunk * |P| of them.
			processed := c.Filtered + c.Refinements
			if processed == 0 {
				t.Fatal("counters empty: cancelled work must still be accounted")
			}
			if bound := int64(cancelChunk) * int64(gir.NumPoints()); processed > bound {
				t.Fatalf("%d point decisions after cancellation, one-chunk bound is %d", processed, bound)
			}
		})
	}
}

func TestParallelCancellationIsChunkBounded(t *testing.T) {
	const nW = 20 * cancelChunk
	const workers = 4
	gir, q := ctxTestGIR(t, nW)
	for _, tc := range []struct {
		name string
		run  func(ctx context.Context, c *stats.Counters) error
	}{
		{"rtk", func(ctx context.Context, c *stats.Counters) error {
			_, err := gir.ReverseTopKCtx(ctx, q, 10, workers, c)
			return err
		}},
		{"rkr", func(ctx context.Context, c *stats.Counters) error {
			_, err := gir.ReverseKRanksCtx(ctx, q, 10, workers, c)
			return err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Call 1 is the upfront check; the next two polls (workers
			// claiming their first chunk) pass, every later poll reports
			// cancellation. However the polls interleave, at most two
			// chunks are ever claimed.
			ctx := newCountdownCtx(3)
			var c stats.Counters
			if err := tc.run(ctx, &c); err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			processed := c.Filtered + c.Refinements
			if bound := 2 * int64(cancelChunk) * int64(gir.NumPoints()); processed > bound {
				t.Fatalf("%d point decisions after cancellation, two-chunk bound is %d", processed, bound)
			}
			if full := int64(nW) * int64(gir.NumPoints()) / 2; processed >= full {
				t.Fatalf("cancelled parallel scan did %d decisions — not meaningfully early", processed)
			}
		})
	}
}

func TestCancelledQueryLeaksNoGoroutines(t *testing.T) {
	gir, q := ctxTestGIR(t, 8*cancelChunk)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx := newCountdownCtx(1 + i%4)
		if _, err := gir.ReverseTopKCtx(ctx, q, 10, 4, nil); err != context.Canceled {
			t.Fatalf("run %d: err = %v", i, err)
		}
		if _, err := gir.ReverseKRanksCtx(ctx, q, 10, 4, nil); err != context.Canceled {
			t.Fatalf("run %d: err = %v", i, err)
		}
	}
	// Workers exit through wg.Wait before the query returns, so the
	// goroutine count must settle back to the baseline.
	for attempt := 0; ; attempt++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		if attempt > 50 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExpiredDeadlineStopsBeforeScanning(t *testing.T) {
	gir, q := ctxTestGIR(t, 2*cancelChunk)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	for _, workers := range []int{1, 4} {
		var c stats.Counters
		if _, err := gir.ReverseTopKCtx(ctx, q, 10, workers, &c); err != context.DeadlineExceeded {
			t.Fatalf("workers=%d RTK err = %v, want DeadlineExceeded", workers, err)
		}
		if _, err := gir.ReverseKRanksCtx(ctx, q, 10, workers, &c); err != context.DeadlineExceeded {
			t.Fatalf("workers=%d RKR err = %v, want DeadlineExceeded", workers, err)
		}
		if c.Filtered+c.Refinements != 0 {
			t.Fatalf("workers=%d: expired context still scanned %d weights", workers, c.Filtered+c.Refinements)
		}
	}
}

// TestCtxAnswersMatchPlainCalls pins the zero-cost property: attaching a
// background context changes neither the answers nor the counters.
func TestCtxAnswersMatchPlainCalls(t *testing.T) {
	gir, q := ctxTestGIR(t, 3000)
	for _, workers := range []int{1, 2, 4, 8} {
		var cPlain, cCtx stats.Counters
		wantRTK := gir.ReverseTopKParallel(q, 10, workers, &cPlain)
		gotRTK, err := gir.ReverseTopKCtx(context.Background(), q, 10, workers, &cCtx)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(wantRTK, gotRTK) {
			t.Fatalf("workers=%d: RTK %v != %v", workers, gotRTK, wantRTK)
		}
		wantRKR := gir.ReverseKRanksParallel(q, 10, workers, nil)
		gotRKR, err := gir.ReverseKRanksCtx(context.Background(), q, 10, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(wantRKR) != len(gotRKR) {
			t.Fatalf("workers=%d: RKR lengths differ", workers)
		}
		for i := range wantRKR {
			if wantRKR[i] != gotRKR[i] {
				t.Fatalf("workers=%d: RKR[%d] %+v != %+v", workers, i, gotRKR[i], wantRKR[i])
			}
		}
	}
}
