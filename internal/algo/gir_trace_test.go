package algo

import (
	"context"
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/trace"
)

// traceSpans runs one traced query and returns the captured span set
// indexed by name (last span wins for duplicate names).
func traceSpans(t *testing.T, run func(tr *trace.Trace)) (*trace.TraceData, map[string]trace.SpanData) {
	t.Helper()
	tc := trace.New(trace.Config{SampleRate: 1})
	tr := tc.Start("query", trace.Parent{})
	if tr == nil {
		t.Fatal("rate-1 tracer did not sample")
	}
	run(tr)
	tr.Finish()
	td := tc.Get(tr.ID())
	if td == nil {
		t.Fatal("trace not stored")
	}
	byName := make(map[string]trace.SpanData)
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	return td, byName
}

func traceTestGIR(t *testing.T) *GIR {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	P := dataset.GenerateProducts(rng, dataset.Clustered, 400, 5, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 300, 5)
	return NewGIR(P.Points, W.Points, P.Range, 32)
}

func requireCaseBreakdown(t *testing.T, sp trace.SpanData, c *stats.Counters) {
	t.Helper()
	for _, key := range []string{"case1_filtered", "case2_filtered", "case3_refined", "bound_sums", "exact_scores", "filter_rate"} {
		if _, ok := sp.Attrs[key]; !ok {
			t.Errorf("span %s missing attr %s: %+v", sp.Name, key, sp.Attrs)
		}
	}
	if c != nil {
		if got := sp.Attrs["case1_filtered"]; got != c.Case1Filtered {
			t.Errorf("case1_filtered attr %v != counter %d", got, c.Case1Filtered)
		}
		if got := sp.Attrs["case2_filtered"]; got != c.Case2Filtered {
			t.Errorf("case2_filtered attr %v != counter %d", got, c.Case2Filtered)
		}
		if got := sp.Attrs["case3_refined"]; got != c.Refinements {
			t.Errorf("case3_refined attr %v != counter %d", got, c.Refinements)
		}
	}
	if c1, c2 := sp.Attrs["case1_filtered"].(int64), sp.Attrs["case2_filtered"].(int64); c1+c2 == 0 {
		t.Errorf("span %s recorded no filtered points — dataset too small for a meaningful test", sp.Name)
	}
}

func TestSequentialScanSpans(t *testing.T) {
	gir := traceTestGIR(t)
	q := gir.Point(10)
	ctx := context.Background()

	var c stats.Counters
	_, spans := traceSpans(t, func(tr *trace.Trace) {
		if _, err := gir.ReverseKRanksTraced(ctx, q, 5, 1, &c, tr); err != nil {
			t.Fatal(err)
		}
	})
	scan, ok := spans["scan"]
	if !ok {
		t.Fatalf("no scan span: %v", spans)
	}
	requireCaseBreakdown(t, scan, &c)
	for _, key := range []string{"heap_admits", "cutoff_final", "weights"} {
		if _, ok := scan.Attrs[key]; !ok {
			t.Errorf("RKR scan span missing %s: %+v", key, scan.Attrs)
		}
	}
	if _, ok := spans["merge"]; !ok {
		t.Error("no merge span")
	}
	if _, ok := spans["scan.worker"]; ok {
		t.Error("sequential query emitted worker spans")
	}

	// RTK: dominator count and fixed cutoff.
	c.Reset()
	_, spans = traceSpans(t, func(tr *trace.Trace) {
		if _, err := gir.ReverseTopKTraced(ctx, q, 50, 1, &c, tr); err != nil {
			t.Fatal(err)
		}
	})
	scan, ok = spans["scan"]
	if !ok {
		t.Fatal("no RTK scan span")
	}
	requireCaseBreakdown(t, scan, &c)
	if _, ok := scan.Attrs["dominators"]; !ok {
		t.Errorf("RTK scan span missing dominators: %+v", scan.Attrs)
	}
	if got := scan.Attrs["cutoff_final"]; got != int64(50) {
		t.Errorf("RTK cutoff_final = %v, want 50", got)
	}
}

// TestTracedCountersWithoutStats checks the entry hook: a traced query
// with a nil caller counter still gets the full case breakdown on its
// scan span.
func TestTracedCountersWithoutStats(t *testing.T) {
	gir := traceTestGIR(t)
	q := gir.Point(3)
	ctx := context.Background()
	for _, workers := range []int{1, 3} {
		_, spans := traceSpans(t, func(tr *trace.Trace) {
			if _, err := gir.ReverseKRanksTraced(ctx, q, 5, workers, nil, tr); err != nil {
				t.Fatal(err)
			}
		})
		scan, ok := spans["scan"]
		if !ok {
			t.Fatalf("workers=%d: no scan span", workers)
		}
		requireCaseBreakdown(t, scan, nil)
	}
}

func TestParallelScanSpans(t *testing.T) {
	gir := traceTestGIR(t)
	q := gir.Point(10)
	ctx := context.Background()
	const workers = 3

	var c stats.Counters
	td, spans := traceSpans(t, func(tr *trace.Trace) {
		if _, err := gir.ReverseKRanksTraced(ctx, q, 5, workers, &c, tr); err != nil {
			t.Fatal(err)
		}
	})
	scan, ok := spans["scan"]
	if !ok {
		t.Fatal("no parallel scan span")
	}
	requireCaseBreakdown(t, scan, &c)
	if got := scan.Attrs["workers"]; got != int64(workers) {
		t.Errorf("workers attr = %v, want %d", got, workers)
	}
	var workerSpans, totalScanned int64
	for _, sp := range td.Spans {
		if sp.Name != "scan.worker" {
			continue
		}
		workerSpans++
		if sp.ParentID != scan.SpanID {
			t.Errorf("worker span parented to %s, want scan", sp.ParentID)
		}
		n, ok := sp.Attrs["weights_scanned"].(int64)
		if !ok {
			t.Errorf("worker span missing weights_scanned: %+v", sp.Attrs)
		}
		totalScanned += n
	}
	if workerSpans != workers {
		t.Fatalf("got %d worker spans, want %d", workerSpans, workers)
	}
	// RKR never exits early, so the workers jointly claim every weight.
	if totalScanned != int64(gir.NumWeights()) {
		t.Errorf("workers scanned %d weights jointly, want %d", totalScanned, gir.NumWeights())
	}
	if _, ok := spans["merge"]; !ok {
		t.Error("no parallel merge span")
	}

	// Parallel RTK spans, including the shared dominator count.
	c.Reset()
	_, spans = traceSpans(t, func(tr *trace.Trace) {
		if _, err := gir.ReverseTopKTraced(ctx, q, 50, workers, &c, tr); err != nil {
			t.Fatal(err)
		}
	})
	scan, ok = spans["scan"]
	if !ok {
		t.Fatal("no parallel RTK scan span")
	}
	requireCaseBreakdown(t, scan, &c)
	if _, ok := scan.Attrs["dominators"]; !ok {
		t.Errorf("parallel RTK scan missing dominators: %+v", scan.Attrs)
	}
}

// TestTracedMatchesUntraced pins that tracing never changes an answer.
func TestTracedMatchesUntraced(t *testing.T) {
	gir := traceTestGIR(t)
	tc := trace.New(trace.Config{SampleRate: 1})
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		for qi := 0; qi < 10; qi++ {
			q := gir.Point(qi * 7)
			tr := tc.Start("q", trace.Parent{})
			traced, err := gir.ReverseKRanksTraced(ctx, q, 5, workers, nil, tr)
			tr.Finish()
			if err != nil {
				t.Fatal(err)
			}
			plain, err := gir.ReverseKRanksCtx(ctx, q, 5, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(traced) != len(plain) {
				t.Fatalf("workers=%d q=%d: traced %d matches, plain %d", workers, qi, len(traced), len(plain))
			}
			for i := range traced {
				if traced[i] != plain[i] {
					t.Fatalf("workers=%d q=%d: match %d differs: %+v vs %+v", workers, qi, i, traced[i], plain[i])
				}
			}
		}
	}
}
