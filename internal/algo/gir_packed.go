package algo

// Packed-row scan kernels. When the index is built with
// Layout.PackedBits > 0, the distinct P^(A) rows live bit-packed in a
// bits.PackedRows store (Section 3.2's b·d-bit strings, fixed-stride and
// word-aligned) and rankBounded routes here instead of the unpacked
// loop. Two things change relative to rankBounded's loop, and nothing
// else:
//
//   - Case 1/2 classification reads cell codes straight out of packed
//     words (shift + mask, no byte loads and no unpacking to a row
//     buffer). The per-(dimension, code) bound addends come from the
//     same scratch.bounds table the unpacked path uses, indexed in the
//     same dimension order, so every (lower, upper) sum is bit-identical
//     to classifyRow's — Case boundaries cannot move, which is what
//     makes packed answers byte-identical to the reference.
//   - The kernel is widened to RowBlock rows per call: one block of four
//     rows classifies in a single noinline leaf with eight independent
//     accumulator chains. The unpacked loop is latency-bound on two
//     serial float adds per dimension; interleaving four rows gives the
//     CPU independent work to overlap, and amortizes the call per group
//     to a quarter.
//
// Case 3 still unpacks nothing: refinement needs the exact float64
// point, not the cells, so it reads the point matrix exactly as before. Blocks are
// gathered from *live* groups only, in scan order, so fully-dominated
// rows are never classified — the same skip the unpacked loop gets per
// group — and counters are incremented only for groups still live at
// consume time, keeping every stats.Counters field identical to the
// unpacked path. The only speculation left is a group killed by a
// dominator observed between gather and consume: its classification is
// wasted arithmetic, but it is skipped unconsumed and uncharged.

import (
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

// RowBlock is the widened kernel's block width: classifyPacked4
// processes this many rows per call. Reported by Index.Layout().
const RowBlock = 4

// packedBoundStride is the per-dimension stride of the bound table a
// packed index gathers (boundStride in gir.go): 2 addends × 256 codes,
// the widest code MaxPackedBits = 8 bits can express. Unlike the
// unpacked layout's interleaved (lower, upper) pairs, the packed layout
// splits each dimension's row into halves — lower addends at [code],
// upper addends at [packedBoundHalf + code] — so both loads use the
// code register with native ×8 scaling and a constant displacement,
// with no 2·code+1 address arithmetic per row.
//
// The stride and half being compile-time constants is what lets the
// kernels below slice the table per dimension
// (bnd[off : off+packedBoundStride]) and index the slice with code&0xff
// — both provably in bounds, so the compiler emits none of the eight
// per-dimension bounds checks that otherwise consume the loop's last
// registers and spill its state to the stack (scripts/check_bce.sh pins
// this). Only the first n entries of each half are written or read; the
// padding is dead space (64 KiB of scratch per worker at d = 16 instead
// of 8), traded for a spill-free inner loop.
// The stride carries one cache line of padding past the two halves:
// 2·256 float64 is exactly 4 KiB, so without it every dimension's rows
// would start 4 KiB apart and their live entries would collide on the
// same few L1 sets (a 32 KiB 8-way L1 wraps at 4 KiB — sixteen
// dimensions fighting over eight ways). The extra line shifts each
// dimension to a fresh set.
const (
	packedBoundHalf   = 256
	packedBoundStride = 2*packedBoundHalf + 8
)

// allCaseAfter is a full block's packed case word when all four rows are
// Case 2 — with counters off, such a block is a no-op and the scan drops
// it on a single compare.
const allCaseAfter = uint32(caseAfter) | uint32(caseAfter)<<8 |
	uint32(caseAfter)<<16 | uint32(caseAfter)<<24

// rankBoundedPacked is rankBounded's scan loop over the packed row
// store. The caller has already charged the f_w(q) multiplication,
// checked the dominator prefix against the cutoff and gathered the
// weight group's bound columns into scratch.
func (gr *GIR) rankBoundedPacked(w, q vec.Vector, fq float64, rnk, cutoff int, dom *domin, scratch *girScratch, c *stats.Counters) (int, bool) {
	bnd := scratch.bounds
	pk := gr.pk
	words := pk.Words()
	wpr := pk.WordsPerRow()
	cpw := pk.CodesPerWord()
	b := pk.BitsPerDim()
	d := gr.pa.Dim()
	classify4 := packedClassify4Func(b)
	single := gr.pg.Single()
	groupLive := dom.groupLive
	nG := len(groupLive)
	for g := 0; g < nG; {
		// Gather the next RowBlock groups still live in scan order.
		// Fully-dominated groups (every member a known dominator, counted
		// into the initial rnk) are skipped before classification — the
		// same per-group skip the unpacked loop gets — so the kernel only
		// ever prices rows that need pricing. Liveness only decreases, so
		// a group skipped here stays skipped; a group gathered here is
		// re-checked at consume time below.
		var gs [RowBlock]int32
		cnt := 0
		for ; g < nG && cnt < RowBlock; g++ {
			if groupLive[g] != 0 {
				gs[cnt] = int32(g)
				cnt++
			}
		}
		// cs4 == 0 marks "classify scalar" for a short tail gather: real
		// case codes are 1..3 per byte, so a full block never packs to
		// zero.
		cs4 := uint32(0)
		if cnt == RowBlock {
			cs4 = classify4(words, int(gs[0])*wpr, int(gs[1])*wpr, int(gs[2])*wpr, int(gs[3])*wpr, d, bnd, fq)
			// All four rows Case 2 is the scan's most common no-op block:
			// q precedes every member, nothing counts, nothing refines.
			// Without counters the whole block can be dropped on one
			// compare instead of four unpredictable per-group branches.
			if cs4 == allCaseAfter && c == nil {
				continue
			}
		}
		for t := 0; t < cnt; t, cs4 = t+1, cs4>>8 {
			gi := int(gs[t])
			live := int(groupLive[gi])
			if live == 0 {
				// Killed by a dominator observed since the gather — the
				// unpacked loop, checking liveness at this group's turn,
				// would skip it too.
				continue
			}
			if c != nil {
				c.BoundSums++
				c.ApproxVisited++
			}
			cs := int32(cs4 & 0xff)
			if cs == 0 {
				cs = classifyPackedRow(words[gi*wpr:(gi+1)*wpr], cpw, b, d, bnd, fq)
			}
			// Consumption mirrors rankBounded's per-group logic exactly.
			if cs == caseBefore { // Case 1: the whole group precedes q
				rnk += live
				if c != nil {
					c.Filtered += int64(live)
					c.Case1Filtered += int64(live)
				}
				if !gr.DisableDomin && dom.groupChecked[gi] < dom.groupSizes[gi] {
					gr.observeGroup(gi, dom, q)
				}
				if rnk >= cutoff {
					return cutoff, false
				}
				continue
			}
			if cs == caseRefine { // Case 3: refine with exact scores
				if pj := int(single[gi]); pj >= 0 {
					if c != nil {
						c.PairwiseMults++
						c.Refinements++
						c.PointsVisited++
					}
					if vec.Dot(w, gr.pm.Row(pj)) < fq {
						rnk++
						if !gr.DisableDomin {
							dom.observe(pj, gr.pm.Row(pj), q)
						}
						if rnk >= cutoff {
							return cutoff, false
						}
					}
					continue
				}
				var ok bool
				if rnk, ok = gr.refineGroup(gi, w, q, fq, rnk, cutoff, dom, c); !ok {
					return cutoff, false
				}
			} else if c != nil { // Case 2: q precedes the whole group
				c.Filtered += int64(live)
				c.Case2Filtered += int64(live)
			}
		}
	}
	return rnk, true
}

// packedCase maps one row's bound sums to its Section 3.1 case code.
// Phrased as two conditional overwrites rather than an if/else chain so
// the compiler lowers it to compare+CMOV: the case outcome is
// data-dependent and unpredictable, and four mispredicted branch chains
// per block cost more than eight flag-register moves.
func packedCase(l, u, fq float64) uint32 {
	c := uint32(caseAfter)
	if l <= fq {
		c = uint32(caseRefine)
	}
	if u < fq {
		c = uint32(caseBefore)
	}
	return c
}

// classifyRowSplit is classifyRow over an unpacked byte row but against
// the packed split-halves table layout — the classifier rankBounded
// uses when WithLayoutReference forces the unpacked path on a packed
// index, whose scratch is gathered in the packed shape. Each sum adds
// the same addend values in the same dimension order as classifyRow and
// the width-specialized kernels, so reference answers stay
// byte-identical.
//
//go:noinline
func classifyRowSplit(row []uint8, bnd []float64, fq float64) int32 {
	var u, l float64
	off := 0
	for _, pc := range row {
		l += bnd[off+int(pc)]
		u += bnd[off+packedBoundHalf+int(pc)]
		off += packedBoundStride
	}
	if u < fq {
		return caseBefore
	}
	if l <= fq {
		return caseRefine
	}
	return caseAfter
}

// classifyPackedRow is classifyRow over one packed row — the scalar tail
// kernel for the up-to-three groups past the last full block.
//
//go:noinline
func classifyPackedRow(row []uint64, cpw, b, d int, bnd []float64, fq float64) int32 {
	mask := uint64(1)<<uint(b) - 1
	var l, u float64
	off := 0
	for wi, rem := 0, d; rem > 0; wi++ {
		w := row[wi]
		m := cpw
		if rem < m {
			m = rem
		}
		rem -= m
		for ; m > 0; m-- {
			bj := bnd[off : off+packedBoundStride]
			k := int(w&mask) & 0xff
			l += bj[k]
			u += bj[packedBoundHalf+k]
			w >>= uint(b)
			off += packedBoundStride
		}
	}
	if u < fq {
		return caseBefore
	}
	if l <= fq {
		return caseRefine
	}
	return caseAfter
}
