package algo

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/trace"
	"gridrank/internal/vec"
)

// Intra-query parallel execution of the GIR algorithms.
//
// The sequential GIR query scans W on one goroutine; batch.go only
// parallelizes across queries, so a single large query (the paper's
// market-analysis case) leaves all but one core idle. The parallel path
// shards W across a worker pool: each worker claims contiguous chunks of
// weight indexes from an atomic cursor and evaluates them with private
// per-worker state — its own Domin buffer, bounds scratch and
// stats.Counters — merged deterministically at the end.
//
// Two pieces of cross-worker pruning state keep the sharded scan as
// effective as the sequential one:
//
//   - RTK (Algorithm 2 lines 7–8): the global-dominator early exit needs
//     the number of DISTINCT points known to dominate q across all
//     workers. A plain shared counter would double-count a dominator
//     discovered independently by two workers and could fire the empty
//     answer prematurely, so sharedDomin deduplicates through a CAS
//     bitset and counts only first claims.
//
//   - RKR (Algorithm 3): the heap cutoff h.Threshold() becomes an atomic
//     watermark. Whenever a worker's local size-k heap is full, its worst
//     retained rank T proves k matches with rank ≤ T exist, so every
//     worker may prune any weight whose running rank exceeds T (cutoff
//     T+1). The watermark is the CAS-minimum of all published T values.
//
// Determinism: results are bit-identical to the sequential path. Workers
// claim chunks of POSITIONS in the cell-sorted visit order (the same
// order the sequential scan uses, so both paths share the weight-group
// scratch reuse); a worker's shard is therefore an arbitrary subsequence
// of W by index, and every pruning cutoff — the local heap threshold as
// well as the watermark — uses T+1, not T, so rank == T candidates,
// which can still win (rank, index) ties, are always refined exactly.
// The global answer is recovered by re-sorting the merged candidates on
// the (rank, index) total order. See DESIGN.md §7 and §9.

// normalizeWorkers resolves a worker-count request: non-positive means
// GOMAXPROCS, and a query never uses more workers than weight vectors.
func normalizeWorkers(workers, nW int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nW {
		workers = nW
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelChunk sizes the unit of work workers claim from the shared
// cursor: small enough for load balance across skewed shards, large
// enough that the atomic claim is amortized over many rank evaluations.
// The cancelChunk ceiling bounds how much work a worker performs between
// context polls, so a cancelled query stops within one chunk.
func parallelChunk(nW, workers int) int {
	chunk := nW / (8 * workers)
	if chunk < 16 {
		chunk = 16
	}
	if chunk > cancelChunk {
		chunk = cancelChunk
	}
	return chunk
}

// sharedDomin tracks the distinct dominators of q discovered by any
// worker. Local Domin buffers publish first discoveries here; the count
// is exact (never double-counts a point), which makes the Algorithm 2
// early exit safe under sharding.
type sharedDomin struct {
	words []atomic.Uint64 // claim bitset, one bit per point
	count atomic.Int64    // number of distinct set bits
}

func newSharedDomin(n int) *sharedDomin {
	return &sharedDomin{words: make([]atomic.Uint64, (n+63)/64)}
}

// claim marks point pj as a dominator; only the first claimer increments
// the count.
func (s *sharedDomin) claim(pj int) {
	w := &s.words[pj>>6]
	bit := uint64(1) << uint(pj&63)
	for {
		old := w.Load()
		if old&bit != 0 {
			return
		}
		if w.CompareAndSwap(old, old|bit) {
			s.count.Add(1)
			return
		}
	}
}

// rankWatermark is the shared RKR admission bound: the minimum worst
// retained rank over every full per-worker heap. Initialized to maxInt
// (no bound) and monotonically tightened with CAS.
type rankWatermark struct {
	v atomic.Int64
}

func newRankWatermark() *rankWatermark {
	wm := &rankWatermark{}
	wm.v.Store(int64(maxInt))
	return wm
}

// tighten lowers the watermark to t if t is smaller.
func (wm *rankWatermark) tighten(t int) {
	for {
		cur := wm.v.Load()
		if int64(t) >= cur {
			return
		}
		if wm.v.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// cutoff combines a worker's local heap threshold with the global
// watermark: prune at the local threshold (safe within the worker's
// ascending shard) or one past the watermark (safe globally), whichever
// is tighter.
func (wm *rankWatermark) cutoff(local int) int {
	g := wm.v.Load()
	if g < int64(maxInt) && int(g)+1 < local {
		return int(g) + 1
	}
	return local
}

// reverseTopKParallel is GIRTop-k (Algorithm 2) sharded over workers
// goroutines. Callers guarantee workers >= 2, k >= 1 and a live ctx on
// entry. Workers poll ctx between chunk claims (chunks are capped at
// cancelChunk weights), so cancellation stops every worker within one
// chunk; the coordinator then joins them all and returns ctx.Err() —
// cancellation never leaks a goroutine.
// layoutLabel names the scan layout for profiler labels.
func (gr *GIR) layoutLabel() string {
	if gr.pk != nil {
		return "packed"
	}
	return "float64"
}

// scanLabels builds the pprof label set stamped on every scan worker
// goroutine, so a goroutine or CPU profile taken during an incident
// attributes worker time to the query kind, its k and the index layout
// (go tool pprof -tagfocus rrq_query=reverse_topk ...).
func (gr *GIR) scanLabels(kind string, k int) pprof.LabelSet {
	return pprof.Labels(
		"rrq_query", kind,
		"rrq_k", strconv.Itoa(k),
		"rrq_layout", gr.layoutLabel(),
	)
}

func (gr *GIR) reverseTopKParallel(ctx context.Context, q vec.Vector, k, workers int, c *stats.Counters, tr *trace.Trace, ref bool) ([]int, error) {
	shared := newSharedDomin(gr.pm.Len())
	var cursor atomic.Int64
	chunk := parallelChunk(gr.wm.Len(), workers)
	done := ctx.Done()
	sp := tr.StartSpan("scan")
	sp.SetInt("workers", int64(workers))
	type workerOut struct {
		res []int
		c   stats.Counters
	}
	outs := make([]workerOut, workers)
	lbls := gr.scanLabels("reverse_topk", k)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(widx int, out *workerOut) {
			defer wg.Done()
			pprof.SetGoroutineLabels(pprof.WithLabels(ctx, lbls))
			wsp := sp.Child("scan.worker")
			wsp.SetInt("worker", int64(widx))
			scanned := 0
			defer func() { endWorkerSpan(wsp, &out.c, scanned) }()
			st := gr.getState()
			defer gr.putState(st)
			st.dom.shared = shared
			st.scratch.ref = ref
			order := gr.wg.MemberOrder()
			for {
				if shared.count.Load() >= int64(k) {
					return
				}
				if done != nil && ctx.Err() != nil {
					return
				}
				end := int(cursor.Add(int64(chunk)))
				start := end - chunk
				if start >= len(order) {
					return
				}
				if end > len(order) {
					end = len(order)
				}
				for oi, wi := range order[start:end] {
					if _, ok := gr.rankBounded(int(wi), q, k, st.dom, st.scratch, &out.c); ok {
						out.res = append(out.res, int(wi))
					}
					if shared.count.Load() >= int64(k) {
						scanned += oi + 1
						return
					}
				}
				scanned += end - start
			}
		}(w, &outs[w])
	}
	wg.Wait()
	base := counterBaseline(sp, c)
	if c != nil {
		for w := range outs {
			c.Add(&outs[w].c)
		}
	} else if sp != nil {
		// The span still wants the merged breakdown; fold into a local.
		c = new(stats.Counters)
		for w := range outs {
			c.Add(&outs[w].c)
		}
	}
	dominators := int(shared.count.Load())
	endScanSpan(sp, c, base, dominators, k, gr.wm.Len())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Algorithm 2 lines 7–8, sharded: k distinct dominators imply every
	// weight ranks q at k or worse, so the answer is empty — exactly what
	// the sequential early exit returns.
	if dominators >= k {
		return nil, nil
	}
	msp := tr.StartSpan("merge")
	var res []int
	for w := range outs {
		res = append(res, outs[w].res...)
	}
	sort.Ints(res)
	msp.SetInt("results", int64(len(res))).End()
	return res, nil
}

// endWorkerSpan closes one scan.worker span with the worker's private
// counter breakdown and how many weights it claimed. Free when tracing
// is off (nil span).
func endWorkerSpan(wsp *trace.Span, c *stats.Counters, scanned int) {
	if wsp == nil {
		return
	}
	wsp.SetInt("weights_scanned", int64(scanned))
	endScanSpan(wsp, c, stats.Counters{}, -1, -1, -1)
}

// reverseKRanksParallel is GIRk-Rank (Algorithm 3) sharded over workers
// goroutines. Callers guarantee workers >= 2, k >= 1 and a live ctx on
// entry; the cancellation contract matches reverseTopKParallel.
func (gr *GIR) reverseKRanksParallel(ctx context.Context, q vec.Vector, k, workers int, c *stats.Counters, tr *trace.Trace, ref bool) ([]topk.Match, error) {
	wm := newRankWatermark()
	var cursor atomic.Int64
	chunk := parallelChunk(gr.wm.Len(), workers)
	done := ctx.Done()
	sp := tr.StartSpan("scan")
	sp.SetInt("workers", int64(workers))
	type workerOut struct {
		matches []topk.Match
		c       stats.Counters
	}
	outs := make([]workerOut, workers)
	lbls := gr.scanLabels("reverse_kranks", k)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(widx int, out *workerOut) {
			defer wg.Done()
			pprof.SetGoroutineLabels(pprof.WithLabels(ctx, lbls))
			wsp := sp.Child("scan.worker")
			wsp.SetInt("worker", int64(widx))
			scanned := 0
			defer func() { endWorkerSpan(wsp, &out.c, scanned) }()
			st := gr.getState()
			defer gr.putState(st)
			st.scratch.ref = ref
			h := st.heap
			h.Reset(k)
			order := gr.wg.MemberOrder()
			for {
				if done != nil && ctx.Err() != nil {
					break
				}
				end := int(cursor.Add(int64(chunk)))
				start := end - chunk
				if start >= len(order) {
					break
				}
				if end > len(order) {
					end = len(order)
				}
				for _, wi := range order[start:end] {
					// The shard is not ascending by weight index, so even
					// the local threshold must admit rank == T ties: T+1,
					// same as the watermark rule.
					cutoff := wm.cutoff(admitCutoff(h))
					if rnk, ok := gr.rankBounded(int(wi), q, cutoff, st.dom, st.scratch, &out.c); ok {
						if h.Offer(topk.Match{WeightIndex: int(wi), Rank: rnk}) && h.Len() == k {
							wm.tighten(h.Threshold())
						}
					}
				}
				scanned += end - start
			}
			out.matches = h.Results()
		}(w, &outs[w])
	}
	wg.Wait()
	base := counterBaseline(sp, c)
	counters := make([]*stats.Counters, workers)
	var all []topk.Match
	for w := range outs {
		counters[w] = &outs[w].c
		all = append(all, outs[w].matches...)
	}
	if c == nil && sp != nil {
		c = new(stats.Counters)
	}
	if c != nil {
		stats.Merge(c, counters...)
	}
	if sp != nil {
		sp.SetInt("cutoff_final", cutoffAttr(int(wm.v.Load())))
	}
	endScanSpan(sp, c, base, -1, -1, gr.wm.Len())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	msp := tr.StartSpan("merge")
	// Every global top-k match survives some worker's local heap (a
	// worker's heap keeps its shard's k best, a superset of the shard's
	// contribution to the global answer), so sorting the union on the
	// sequential (rank, index) order and truncating reproduces the
	// sequential answer exactly.
	sort.Slice(all, func(a, b int) bool {
		if all[a].Rank != all[b].Rank {
			return all[a].Rank < all[b].Rank
		}
		return all[a].WeightIndex < all[b].WeightIndex
	})
	if len(all) > k {
		all = all[:k]
	}
	msp.SetInt("results", int64(len(all))).End()
	return all, nil
}
