package algo

// Microbenchmarks for the classify kernels in isolation. The macro
// ReverseKRanks benchmarks (root package) price the whole scan and are
// noisy on shared machines; these loop one kernel over a resident row
// store and a resident bound table, so the ns/row ratio between the
// packed and unpacked kernels is stable enough to steer kernel work.
// The sink defeats dead-code elimination.

import (
	"math/rand"
	"testing"

	"gridrank/internal/bits"
)

var kernelSink int32

func kernelFixture(nRows, d, n, b, stride int) (rowsU8 []uint8, pk *bits.PackedRows, bnd []float64, fq float64) {
	rng := rand.New(rand.NewSource(7))
	rowsU8 = make([]uint8, nRows*d)
	for i := range rowsU8 {
		rowsU8[i] = uint8(rng.Intn(n))
	}
	pk = bits.NewPackedRows(nRows, d, b)
	for r := 0; r < nRows; r++ {
		pk.EncodeRow(r, rowsU8[r*d:(r+1)*d])
	}
	bnd = make([]float64, d*stride)
	for i := range bnd {
		bnd[i] = rng.Float64()
	}
	// A mid-range threshold so all three cases occur and the final
	// compares stay unpredictable, as in a real scan.
	fq = float64(d) * 0.5
	return rowsU8, pk, bnd, fq
}

func benchClassifyUnpacked(b *testing.B, d int) {
	const nRows, n = 4096, 32
	rows, _, bnd, fq := kernelFixture(nRows, d, n, 5, 2*n)
	b.SetBytes(int64(d)) // codes classified per op-row
	b.ResetTimer()
	var s int32
	for i := 0; i < b.N; i++ {
		base := (i % nRows) * d
		s += classifyRow(rows[base:base+d], bnd, 2*n, fq)
	}
	kernelSink = s
}

func benchClassifyPacked4(b *testing.B, d, pb int) {
	const nRows, n = 4096, 32
	_, pk, bnd, fq := kernelFixture(nRows, d, n, pb, packedBoundStride)
	words := pk.Words()
	wpr := pk.WordsPerRow()
	classify4 := packedClassify4Func(pb)
	b.SetBytes(int64(4 * d))
	b.ResetTimer()
	var s uint32
	for i := 0; i < b.N; i++ {
		g := (i * 4) % nRows
		s += classify4(words, g*wpr, (g+1)*wpr, (g+2)*wpr, (g+3)*wpr, d, bnd, fq)
	}
	kernelSink = int32(s)
}

func BenchmarkClassifyRowD6(b *testing.B)      { benchClassifyUnpacked(b, 6) }
func BenchmarkClassifyRowD16(b *testing.B)     { benchClassifyUnpacked(b, 16) }
func BenchmarkClassifyPacked4D6(b *testing.B)  { benchClassifyPacked4(b, 6, 5) }
func BenchmarkClassifyPacked4D16(b *testing.B) { benchClassifyPacked4(b, 16, 5) }
