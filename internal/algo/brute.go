package algo

import (
	"fmt"

	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// Brute is the exact reference implementation: full rank counting over
// every (p, w) pair with no pruning or early termination. It defines the
// semantics every other algorithm must reproduce and is the ground truth
// of the cross-validation tests. Complexity is Θ(|P|·|W|) per query.
type Brute struct {
	P []vec.Vector
	W []vec.Vector
}

// NewBrute validates shapes and returns the reference algorithm.
func NewBrute(P, W []vec.Vector) *Brute {
	validateSets(P, W)
	return &Brute{P: P, W: W}
}

// validateSets panics on empty or dimensionally inconsistent inputs; the
// constructors of every algorithm share it.
func validateSets(P, W []vec.Vector) {
	if len(P) == 0 || len(W) == 0 {
		panic("algo: empty data set")
	}
	d := len(P[0])
	for i, p := range P {
		if len(p) != d {
			panic(fmt.Sprintf("algo: point %d has dimension %d, want %d", i, len(p), d))
		}
	}
	for i, w := range W {
		if len(w) != d {
			panic(fmt.Sprintf("algo: weight %d has dimension %d, want %d", i, len(w), d))
		}
	}
}

// Name implements RTKAlgorithm and RKRAlgorithm.
func (b *Brute) Name() string { return "BRUTE" }

// ReverseTopK returns all weight indexes whose rank of q is below k.
func (b *Brute) ReverseTopK(q vec.Vector, k int, c *stats.Counters) []int {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil
	}
	var res []int
	for wi, w := range b.W {
		if topk.Rank(b.P, w, q, c) < k {
			res = append(res, wi)
		}
	}
	return res
}

// ReverseKRanks returns the k weights ranking q best.
func (b *Brute) ReverseKRanks(q vec.Vector, k int, c *stats.Counters) []topk.Match {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil
	}
	h := topk.NewKRankHeap(k)
	for wi, w := range b.W {
		h.Offer(topk.Match{WeightIndex: wi, Rank: topk.Rank(b.P, w, q, c)})
	}
	return h.Results()
}
