package algo

import (
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

func equalAgg(a, b []AggMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// GIR's budgeted aggregate query must match brute force across bundle
// sizes, dimensions and k.
func TestAggregateCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ d, bundle int }{
		{3, 1}, {3, 2}, {6, 3}, {6, 5}, {10, 4},
	} {
		P := dataset.GenerateProducts(rng, dataset.Uniform, 300, cfg.d, dataset.DefaultRange)
		W := dataset.GenerateWeights(rng, dataset.Uniform, 120, cfg.d)
		brute := NewBrute(P.Points, W.Points)
		gir := NewGIR(P.Points, W.Points, P.Range, 32)
		for trial := 0; trial < 5; trial++ {
			Q := make([]vec.Vector, cfg.bundle)
			for i := range Q {
				Q[i] = P.Points[rng.Intn(len(P.Points))]
			}
			for _, k := range []int{1, 7, 30} {
				want := brute.AggregateReverseRank(Q, k, nil)
				got := gir.AggregateReverseRank(Q, k, nil)
				if !equalAgg(got, want) {
					t.Fatalf("d=%d |Q|=%d k=%d:\ngot  %+v\nwant %+v",
						cfg.d, cfg.bundle, k, got, want)
				}
			}
		}
	}
}

// A singleton bundle must coincide with reverse k-ranks.
func TestAggregateSingletonEqualsRKR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	P := dataset.GenerateProducts(rng, dataset.Clustered, 250, 4, 100)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 80, 4)
	gir := NewGIR(P.Points, W.Points, 100, 32)
	for trial := 0; trial < 5; trial++ {
		q := P.Points[rng.Intn(len(P.Points))]
		agg := gir.AggregateReverseRank([]vec.Vector{q}, 9, nil)
		rkr := gir.ReverseKRanks(q, 9, nil)
		if len(agg) != len(rkr) {
			t.Fatalf("lengths differ: %d vs %d", len(agg), len(rkr))
		}
		for i := range rkr {
			if agg[i].WeightIndex != rkr[i].WeightIndex || agg[i].AggRank != rkr[i].Rank {
				t.Fatalf("singleton bundle %d: %+v vs %+v", i, agg[i], rkr[i])
			}
		}
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 60, 3, 100)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 25, 3)
	gir := NewGIR(P.Points, W.Points, 100, 16)
	if got := gir.AggregateReverseRank(nil, 5, nil); got != nil {
		t.Error("empty bundle should return nil")
	}
	if got := gir.AggregateReverseRank([]vec.Vector{P.Points[0]}, 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
	// k > |W|: everything returned, sorted by (rank, index).
	got := gir.AggregateReverseRank([]vec.Vector{P.Points[0], P.Points[1]}, 100, nil)
	if len(got) != len(W.Points) {
		t.Fatalf("k>|W|: got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].AggRank < got[i-1].AggRank ||
			(got[i].AggRank == got[i-1].AggRank && got[i].WeightIndex < got[i-1].WeightIndex) {
			t.Fatalf("results out of order: %+v", got)
		}
	}
}

// The budgeted exit must save work relative to ranking every bundle
// member for every preference.
func TestAggregateBudgetSavesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 2000, 6, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 400, 6)
	gir := NewGIR(P.Points, W.Points, P.Range, 32)
	brute := NewBrute(P.Points, W.Points)
	Q := []vec.Vector{P.Points[10], P.Points[20], P.Points[30], P.Points[40]}
	var cGIR, cBrute stats.Counters
	if !equalAgg(gir.AggregateReverseRank(Q, 5, &cGIR), brute.AggregateReverseRank(Q, 5, &cBrute)) {
		t.Fatal("answers differ")
	}
	if cGIR.PairwiseMults*3 >= cBrute.PairwiseMults {
		t.Errorf("budgeted GIR should save >3x multiplications: %d vs %d",
			cGIR.PairwiseMults, cBrute.PairwiseMults)
	}
}

// Heavy duplicate products in the bundle (same item twice) stay correct.
func TestAggregateDuplicateBundleMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 120, 3, 100)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 40, 3)
	gir := NewGIR(P.Points, W.Points, 100, 16)
	brute := NewBrute(P.Points, W.Points)
	Q := []vec.Vector{P.Points[7], P.Points[7], P.Points[7]}
	if !equalAgg(gir.AggregateReverseRank(Q, 6, nil), brute.AggregateReverseRank(Q, 6, nil)) {
		t.Fatal("duplicate bundle members break agreement")
	}
}
