package algo

// Width-specialized 4-row classify kernels, one per legal PackedBits
// value. The five bodies are the same template stamped out with b as a
// compile-time constant; only the shift/mask immediates and the
// codes-per-word count differ. Keeping b constant is worth the
// repetition: the generic kernel's variable shift pins the count in CL,
// keeps a shift cursor and the width live across the loop, and masks
// every extracted code twice (once with the width mask, once with a
// constant 0xff so the bounds-check prover has an upper bound). With
// immediates all of that folds away — the decode is one in-place
// SHR-by-constant per word per row plus one AND-by-constant per code,
// the prover bounds the code from the constant mask alone, and the
// freed registers keep the whole loop state out of memory.
//
// The four rows are addressed by word offset (o0..o3), not as one
// contiguous window: rankBoundedPacked gathers the next four *live*
// groups, so rows of fully-dominated groups are never classified — the
// same skip the unpacked loop gets per group. The offsets cost one int
// add per word in the outer loop, nothing in the per-code loop.
//
// Template (see classifyPacked4B5 for the annotated copy):
//
//   - outer loop per word of the four rows, inner loop per code in the
//     word (word-major, as in the generic kernels in gir_packed.go);
//   - codes index the packed split-halves bound table: lower addend at
//     bj[k], upper at bj[packedBoundHalf+k];
//   - one (lower, upper) accumulator pair per row, dimensions in row
//     order, so sums are bit-identical to classifyRow's.
//
// packedClassify4Func selects the variant; TestGroupedVsReference
// sweeps every width against the float64 reference, so all five bodies
// are answer-checked, and scripts/check_bce.sh pins their
// bounds-check count (the table loads must stay provably in bounds).

// packedClassify4Func returns the 4-row classify kernel for a packed
// width. Called once per scan, outside the hot loop.
func packedClassify4Func(b int) func([]uint64, int, int, int, int, int, []float64, float64) uint32 {
	switch b {
	case 4:
		return classifyPacked4B4
	case 5:
		return classifyPacked4B5
	case 6:
		return classifyPacked4B6
	case 7:
		return classifyPacked4B7
	case 8:
		return classifyPacked4B8
	}
	panic("algo: no packed kernel for width")
}

// classifyPacked4B5 is the annotated template instance: four rows at
// b = 5 bits per code, 12 codes per word. o0..o3 are the rows' word
// offsets into the store; the return packs one case code byte per row
// (row r in bits 8r..8r+7).
//
//go:noinline
func classifyPacked4B5(words []uint64, o0, o1, o2, o3, d int, bnd []float64, fq float64) uint32 {
	const b, cpw = 5, 64 / 5
	const mask = uint64(1)<<b - 1
	var l0, u0, l1, u1, l2, u2, l3, u3 float64
	off := 0
	for wi, rem := 0, d; rem > 0; wi++ {
		// The four rows' words for this dimension run. Mutating shifts
		// (w >>= b) keep the decode to one immediate shift per word per
		// code, with no shift cursor.
		w0, w1, w2, w3 := words[o0+wi], words[o1+wi], words[o2+wi], words[o3+wi]
		m := cpw
		if rem < m {
			m = rem
		}
		rem -= m
		for ; m > 0; m-- {
			// Constant-length window: the prover sees len(bj) and
			// k ≤ mask < packedBoundHalf, so the eight table loads carry
			// no bounds checks.
			bj := bnd[off : off+packedBoundStride]
			k0 := int(w0 & mask)
			k1 := int(w1 & mask)
			k2 := int(w2 & mask)
			k3 := int(w3 & mask)
			l0 += bj[k0]
			u0 += bj[packedBoundHalf+k0]
			l1 += bj[k1]
			u1 += bj[packedBoundHalf+k1]
			l2 += bj[k2]
			u2 += bj[packedBoundHalf+k2]
			l3 += bj[k3]
			u3 += bj[packedBoundHalf+k3]
			w0 >>= b
			w1 >>= b
			w2 >>= b
			w3 >>= b
			off += packedBoundStride
		}
	}
	return packedCase(l0, u0, fq) | packedCase(l1, u1, fq)<<8 |
		packedCase(l2, u2, fq)<<16 | packedCase(l3, u3, fq)<<24
}

//go:noinline
func classifyPacked4B4(words []uint64, o0, o1, o2, o3, d int, bnd []float64, fq float64) uint32 {
	const b, cpw = 4, 64 / 4
	const mask = uint64(1)<<b - 1
	var l0, u0, l1, u1, l2, u2, l3, u3 float64
	off := 0
	for wi, rem := 0, d; rem > 0; wi++ {
		w0, w1, w2, w3 := words[o0+wi], words[o1+wi], words[o2+wi], words[o3+wi]
		m := cpw
		if rem < m {
			m = rem
		}
		rem -= m
		for ; m > 0; m-- {
			bj := bnd[off : off+packedBoundStride]
			k0 := int(w0 & mask)
			k1 := int(w1 & mask)
			k2 := int(w2 & mask)
			k3 := int(w3 & mask)
			l0 += bj[k0]
			u0 += bj[packedBoundHalf+k0]
			l1 += bj[k1]
			u1 += bj[packedBoundHalf+k1]
			l2 += bj[k2]
			u2 += bj[packedBoundHalf+k2]
			l3 += bj[k3]
			u3 += bj[packedBoundHalf+k3]
			w0 >>= b
			w1 >>= b
			w2 >>= b
			w3 >>= b
			off += packedBoundStride
		}
	}
	return packedCase(l0, u0, fq) | packedCase(l1, u1, fq)<<8 |
		packedCase(l2, u2, fq)<<16 | packedCase(l3, u3, fq)<<24
}

//go:noinline
func classifyPacked4B6(words []uint64, o0, o1, o2, o3, d int, bnd []float64, fq float64) uint32 {
	const b, cpw = 6, 64 / 6
	const mask = uint64(1)<<b - 1
	var l0, u0, l1, u1, l2, u2, l3, u3 float64
	off := 0
	for wi, rem := 0, d; rem > 0; wi++ {
		w0, w1, w2, w3 := words[o0+wi], words[o1+wi], words[o2+wi], words[o3+wi]
		m := cpw
		if rem < m {
			m = rem
		}
		rem -= m
		for ; m > 0; m-- {
			bj := bnd[off : off+packedBoundStride]
			k0 := int(w0 & mask)
			k1 := int(w1 & mask)
			k2 := int(w2 & mask)
			k3 := int(w3 & mask)
			l0 += bj[k0]
			u0 += bj[packedBoundHalf+k0]
			l1 += bj[k1]
			u1 += bj[packedBoundHalf+k1]
			l2 += bj[k2]
			u2 += bj[packedBoundHalf+k2]
			l3 += bj[k3]
			u3 += bj[packedBoundHalf+k3]
			w0 >>= b
			w1 >>= b
			w2 >>= b
			w3 >>= b
			off += packedBoundStride
		}
	}
	return packedCase(l0, u0, fq) | packedCase(l1, u1, fq)<<8 |
		packedCase(l2, u2, fq)<<16 | packedCase(l3, u3, fq)<<24
}

//go:noinline
func classifyPacked4B7(words []uint64, o0, o1, o2, o3, d int, bnd []float64, fq float64) uint32 {
	const b, cpw = 7, 64 / 7
	const mask = uint64(1)<<b - 1
	var l0, u0, l1, u1, l2, u2, l3, u3 float64
	off := 0
	for wi, rem := 0, d; rem > 0; wi++ {
		w0, w1, w2, w3 := words[o0+wi], words[o1+wi], words[o2+wi], words[o3+wi]
		m := cpw
		if rem < m {
			m = rem
		}
		rem -= m
		for ; m > 0; m-- {
			bj := bnd[off : off+packedBoundStride]
			k0 := int(w0 & mask)
			k1 := int(w1 & mask)
			k2 := int(w2 & mask)
			k3 := int(w3 & mask)
			l0 += bj[k0]
			u0 += bj[packedBoundHalf+k0]
			l1 += bj[k1]
			u1 += bj[packedBoundHalf+k1]
			l2 += bj[k2]
			u2 += bj[packedBoundHalf+k2]
			l3 += bj[k3]
			u3 += bj[packedBoundHalf+k3]
			w0 >>= b
			w1 >>= b
			w2 >>= b
			w3 >>= b
			off += packedBoundStride
		}
	}
	return packedCase(l0, u0, fq) | packedCase(l1, u1, fq)<<8 |
		packedCase(l2, u2, fq)<<16 | packedCase(l3, u3, fq)<<24
}

//go:noinline
func classifyPacked4B8(words []uint64, o0, o1, o2, o3, d int, bnd []float64, fq float64) uint32 {
	const b, cpw = 8, 64 / 8
	const mask = uint64(1)<<b - 1
	var l0, u0, l1, u1, l2, u2, l3, u3 float64
	off := 0
	for wi, rem := 0, d; rem > 0; wi++ {
		w0, w1, w2, w3 := words[o0+wi], words[o1+wi], words[o2+wi], words[o3+wi]
		m := cpw
		if rem < m {
			m = rem
		}
		rem -= m
		for ; m > 0; m-- {
			bj := bnd[off : off+packedBoundStride]
			k0 := int(w0 & mask)
			k1 := int(w1 & mask)
			k2 := int(w2 & mask)
			k3 := int(w3 & mask)
			l0 += bj[k0]
			u0 += bj[packedBoundHalf+k0]
			l1 += bj[k1]
			u1 += bj[packedBoundHalf+k1]
			l2 += bj[k2]
			u2 += bj[packedBoundHalf+k2]
			l3 += bj[k3]
			u3 += bj[packedBoundHalf+k3]
			w0 >>= b
			w1 >>= b
			w2 >>= b
			w3 >>= b
			off += packedBoundStride
		}
	}
	return packedCase(l0, u0, fq) | packedCase(l1, u1, fq)<<8 |
		packedCase(l2, u2, fq)<<16 | packedCase(l3, u3, fq)<<24
}
