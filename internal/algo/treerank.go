package algo

import (
	"gridrank/internal/rtree"
	"gridrank/internal/stats"
	"gridrank/internal/vec"
)

// This file holds the branch-and-bound counting primitives shared by the
// tree-based baselines BBR and MPA. Each MBR bound evaluation costs d
// multiplications — the same as one exact score — so it is counted as one
// pairwise computation, which is how the paper's Figure 11b/11d can show
// the tree methods performing MORE pairwise computations than a scan.

// treeRankBounded counts the points of the subtree under n whose score
// under w is strictly below fq, stopping at cutoff. Whole subtrees are
// counted (score upper corner below fq) or skipped (lower corner at or
// above fq) without descending. ok is false when the cutoff was reached.
func treeRankBounded(n *rtree.Node, w vec.Vector, fq float64, cutoff int, c *stats.Counters) (int, bool) {
	count := 0
	var visit func(n *rtree.Node) bool
	visit = func(n *rtree.Node) bool {
		if c != nil {
			c.NodesVisited++
			if n.Leaf() {
				c.LeavesVisited++
			}
		}
		// Upper corner: max_{p∈MBR} f_w(p) = Σ w[i]·Hi[i].
		if c != nil {
			c.PairwiseMults++
		}
		if vec.Dot(w, n.MBR.Hi) < fq {
			count += n.Size
			return count < cutoff
		}
		// Lower corner: min_{p∈MBR} f_w(p) = Σ w[i]·Lo[i].
		if c != nil {
			c.PairwiseMults++
		}
		if vec.Dot(w, n.MBR.Lo) >= fq {
			return true // no point in this subtree can beat q
		}
		if n.Leaf() {
			for _, e := range n.Entries {
				if c != nil {
					c.PairwiseMults++
					c.PointsVisited++
				}
				if vec.Dot(w, e.Point) < fq {
					count++
					if count >= cutoff {
						return false
					}
				}
			}
			return true
		}
		for _, child := range n.Children {
			if !visit(child) {
				return false
			}
		}
		return true
	}
	if n == nil || cutoff <= 0 {
		return 0, cutoff > 0
	}
	ok := visit(n)
	if !ok {
		return cutoff, false
	}
	return count, true
}

// countBeatAll counts points p under n that beat q for EVERY weight in the
// box [wlo, whi]: max_{w∈box} w·(p−q) < 0. This is the group-level rank
// lower bound of BBR and MPA. The count stops at cutoff.
func countBeatAll(n *rtree.Node, q, wlo, whi vec.Vector, cutoff int, c *stats.Counters) int {
	count := 0
	var visit func(n *rtree.Node) bool
	visit = func(n *rtree.Node) bool {
		if c != nil {
			c.NodesVisited++
			c.PairwiseMults++
		}
		// max over p∈MBR and w∈box of w·(p−q): attained at p = Hi.
		if vec.MaxDiffScore(n.MBR.Hi, q, wlo, whi) < 0 {
			count += n.Size
			return count < cutoff
		}
		// min over p∈MBR of the per-point max: attained at p = Lo. If even
		// the easiest point fails, no point in the subtree qualifies.
		if c != nil {
			c.PairwiseMults++
		}
		if vec.MaxDiffScore(n.MBR.Lo, q, wlo, whi) >= 0 {
			return true
		}
		if n.Leaf() {
			if c != nil {
				c.LeavesVisited++
			}
			for _, e := range n.Entries {
				if c != nil {
					c.PairwiseMults++
					c.PointsVisited++
				}
				if vec.MaxDiffScore(e.Point, q, wlo, whi) < 0 {
					count++
					if count >= cutoff {
						return false
					}
				}
			}
			return true
		}
		for _, child := range n.Children {
			if !visit(child) {
				return false
			}
		}
		return true
	}
	if n == nil || cutoff <= 0 {
		return 0
	}
	visit(n)
	if count > cutoff {
		count = cutoff
	}
	return count
}

// countBeatSome counts points p under n that beat q for AT LEAST ONE
// weight in the box: min_{w∈box} w·(p−q) < 0. This upper-bounds the rank
// of every individual weight in the box. The count stops at cutoff.
func countBeatSome(n *rtree.Node, q, wlo, whi vec.Vector, cutoff int, c *stats.Counters) int {
	count := 0
	var visit func(n *rtree.Node) bool
	visit = func(n *rtree.Node) bool {
		if c != nil {
			c.NodesVisited++
			c.PairwiseMults++
		}
		// max over p∈MBR of the per-point min: attained at p = Hi. If even
		// the hardest point qualifies, the whole subtree does.
		if vec.MinDiffScore(n.MBR.Hi, q, wlo, whi) < 0 {
			count += n.Size
			return count < cutoff
		}
		// min over p∈MBR and w∈box: attained at p = Lo. If positive, no
		// point in the subtree can beat q for any weight in the box.
		if c != nil {
			c.PairwiseMults++
		}
		if vec.MinDiffScore(n.MBR.Lo, q, wlo, whi) >= 0 {
			return true
		}
		if n.Leaf() {
			if c != nil {
				c.LeavesVisited++
			}
			for _, e := range n.Entries {
				if c != nil {
					c.PairwiseMults++
					c.PointsVisited++
				}
				if vec.MinDiffScore(e.Point, q, wlo, whi) < 0 {
					count++
					if count >= cutoff {
						return false
					}
				}
			}
			return true
		}
		for _, child := range n.Children {
			if !visit(child) {
				return false
			}
		}
		return true
	}
	if n == nil || cutoff <= 0 {
		return 0
	}
	visit(n)
	if count > cutoff {
		count = cutoff
	}
	return count
}
