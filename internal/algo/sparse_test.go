package algo

import (
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/grid"
	"gridrank/internal/stats"
)

// Sparse GIR must agree exactly with brute force on sparse weight sets,
// across sparsity levels, dimensions and k.
func TestSparseGIRCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ d, nnz int }{
		{6, 1}, {6, 2}, {10, 3}, {16, 2}, {4, 4}, // nnz = d: dense corner case
	} {
		P := dataset.GenerateProducts(rng, dataset.Uniform, 300, cfg.d, dataset.DefaultRange)
		W := dataset.SparseWeights(rng, 120, cfg.d, cfg.nnz)
		brute := NewBrute(P.Points, W.Points)
		sparse := NewSparseGIR(P.Points, W.Points, P.Range, 32)
		for qi := 0; qi < 5; qi++ {
			q := P.Points[rng.Intn(len(P.Points))]
			for _, k := range []int{1, 10, 40} {
				want := brute.ReverseTopK(q, k, nil)
				got := sparse.ReverseTopK(q, k, nil)
				if !equalInts(got, want) {
					t.Fatalf("d=%d nnz=%d k=%d RTK: got %v want %v", cfg.d, cfg.nnz, k, got, want)
				}
				wantKR := brute.ReverseKRanks(q, k, nil)
				gotKR := sparse.ReverseKRanks(q, k, nil)
				if !equalMatches(gotKR, wantKR) {
					t.Fatalf("d=%d nnz=%d k=%d RKR: got %+v want %+v", cfg.d, cfg.nnz, k, gotKR, wantKR)
				}
			}
		}
	}
}

// Sparse GIR also matches dense GIR on dense weights (nnz = d).
func TestSparseGIRMatchesDenseOnDenseWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 400, 5, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 150, 5)
	dense := NewGIR(P.Points, W.Points, P.Range, 32)
	sparse := NewSparseGIR(P.Points, W.Points, P.Range, 32)
	for qi := 0; qi < 5; qi++ {
		q := P.Points[rng.Intn(len(P.Points))]
		if !equalInts(sparse.ReverseTopK(q, 20, nil), dense.ReverseTopK(q, 20, nil)) {
			t.Fatal("sparse and dense GIR disagree on dense weights (RTK)")
		}
		if !equalMatches(sparse.ReverseKRanks(q, 20, nil), dense.ReverseKRanks(q, 20, nil)) {
			t.Fatal("sparse and dense GIR disagree on dense weights (RKR)")
		}
	}
}

// The point of the extension: on sparse weights, the sparse variant does
// fewer exact multiplications than the dense one (its skipped zero
// dimensions tighten the upper bound, shrinking the refinement set).
func TestSparseGIRTighterOnSparseWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d, nnz = 20, 3
	P := dataset.GenerateProducts(rng, dataset.Uniform, 2000, d, dataset.DefaultRange)
	W := dataset.SparseWeights(rng, 300, d, nnz)
	dense := NewGIR(P.Points, W.Points, P.Range, 32)
	sparse := NewSparseGIR(P.Points, W.Points, P.Range, 32)
	if got := sparse.AvgNonZero(); got != nnz {
		t.Fatalf("AvgNonZero = %v, want %d", got, nnz)
	}
	var cDense, cSparse stats.Counters
	for qi := 0; qi < 4; qi++ {
		q := P.Points[rng.Intn(len(P.Points))]
		want := dense.ReverseKRanks(q, 10, &cDense)
		got := sparse.ReverseKRanks(q, 10, &cSparse)
		if !equalMatches(got, want) {
			t.Fatal("sparse disagrees with dense")
		}
	}
	if cSparse.Refinements >= cDense.Refinements {
		t.Errorf("sparse refinements %d should undercut dense %d",
			cSparse.Refinements, cDense.Refinements)
	}
}

func TestSparseGIREdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 50, 4, 100)
	W := dataset.SparseWeights(rng, 20, 4, 1)
	s := NewSparseGIR(P.Points, W.Points, P.Range, 16)
	if got := s.ReverseTopK(P.Points[0], 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := s.ReverseKRanks(P.Points[0], 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := s.ReverseTopK(P.Points[0], len(P.Points), nil); len(got) != len(W.Points) {
		t.Errorf("k=|P|: got %d of %d weights", len(got), len(W.Points))
	}
}

func TestSparseGIRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 should panic")
		}
	}()
	NewSparseGIR([][]float64{{1}}, [][]float64{{1}}, 10, 0)
}

// GIR over the adaptive quantile grid agrees with brute force on skewed
// data — the future-work extension plugged into the production algorithm.
func TestAdaptiveGIRCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	P := dataset.GenerateProducts(rng, dataset.Exponential, 400, 6, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Exponential, 150, 6)
	ad := grid.NewAdaptive(32, P.Points, W.Points, P.Range)
	gir := NewGIRWithBounder(P.Points, W.Points, ad)
	brute := NewBrute(P.Points, W.Points)
	for qi := 0; qi < 6; qi++ {
		q := P.Points[rng.Intn(len(P.Points))]
		for _, k := range []int{1, 15} {
			if !equalInts(gir.ReverseTopK(q, k, nil), brute.ReverseTopK(q, k, nil)) {
				t.Fatalf("adaptive GIR RTK k=%d disagrees with brute force", k)
			}
			if !equalMatches(gir.ReverseKRanks(q, k, nil), brute.ReverseKRanks(q, k, nil)) {
				t.Fatalf("adaptive GIR RKR k=%d disagrees with brute force", k)
			}
		}
	}
}

// On exponential data the adaptive grid refines fewer points than the
// equal-width grid at the same n.
func TestAdaptiveGIRFiltersBetterOnSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	P := dataset.GenerateProducts(rng, dataset.Exponential, 2000, 6, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 300, 6)
	eq := NewGIR(P.Points, W.Points, P.Range, 16)
	ad := NewGIRWithBounder(P.Points, W.Points, grid.NewAdaptive(16, P.Points, W.Points, P.Range))
	var cEq, cAd stats.Counters
	for qi := 0; qi < 4; qi++ {
		q := P.Points[rng.Intn(len(P.Points))]
		if !equalMatches(ad.ReverseKRanks(q, 10, &cAd), eq.ReverseKRanks(q, 10, &cEq)) {
			t.Fatal("adaptive and equal-width GIR disagree")
		}
	}
	if cAd.Refinements >= cEq.Refinements {
		t.Errorf("adaptive refinements %d should undercut equal-width %d on skewed data",
			cAd.Refinements, cEq.Refinements)
	}
}

// Domin ablation: disabling the buffer must not change answers, only cost.
func TestDisableDominKeepsAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 500, 4, 100)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 150, 4)
	on := NewGIR(P.Points, W.Points, 100, 32)
	off := NewGIR(P.Points, W.Points, 100, 32)
	off.DisableDomin = true
	simOn := NewSIM(P.Points, W.Points)
	simOff := NewSIM(P.Points, W.Points)
	simOff.DisableDomin = true
	for qi := 0; qi < 6; qi++ {
		q := P.Points[rng.Intn(len(P.Points))]
		if !equalInts(on.ReverseTopK(q, 12, nil), off.ReverseTopK(q, 12, nil)) {
			t.Fatal("DisableDomin changed GIR RTK answers")
		}
		if !equalMatches(on.ReverseKRanks(q, 12, nil), off.ReverseKRanks(q, 12, nil)) {
			t.Fatal("DisableDomin changed GIR RKR answers")
		}
		if !equalInts(simOn.ReverseTopK(q, 12, nil), simOff.ReverseTopK(q, 12, nil)) {
			t.Fatal("DisableDomin changed SIM RTK answers")
		}
	}
}
