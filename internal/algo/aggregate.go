package algo

import (
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// Aggregate reverse rank queries (Dong et al., DEXA 2016 — the paper's
// reference [7]) extend reverse k-ranks from one product to a bundle: the
// aggregate rank of a preference w for a query set Q is Σ_{q∈Q} rank(w,q),
// and the query returns the k preferences minimizing it. The use case is
// product bundling: which customers like this whole set best?

// AggMatch is one aggregate reverse rank result.
type AggMatch struct {
	WeightIndex int
	// AggRank is the sum over the query bundle of the number of products
	// ranked strictly above each query product.
	AggRank int
}

// AggregateReverseRank (brute force) evaluates Σ rank(w, q) for every
// preference and keeps the k best. Ties resolve toward smaller indexes.
func (b *Brute) AggregateReverseRank(Q []vec.Vector, k int, c *stats.Counters) []AggMatch {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 || len(Q) == 0 {
		return nil
	}
	h := topk.NewKRankHeap(k)
	for wi, w := range b.W {
		total := 0
		for _, q := range Q {
			total += topk.Rank(b.P, w, q, c)
		}
		h.Offer(topk.Match{WeightIndex: wi, Rank: total})
	}
	return toAggMatches(h.Results())
}

// AggregateReverseRank (GIR) computes the same answer with Grid-index
// filtering and a budgeted early exit: once the running aggregate of a
// preference reaches the heap's admission threshold, the remaining bundle
// members need not be ranked at all.
func (gr *GIR) AggregateReverseRank(Q []vec.Vector, k int, c *stats.Counters) []AggMatch {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 || len(Q) == 0 {
		return nil
	}
	// One Domin buffer per bundle member: dominance is per query point
	// and reusable across all preferences.
	doms := make([]*domin, len(Q))
	for i := range doms {
		doms[i] = gr.newGroupedDomin()
	}
	scratch := gr.newScratch()
	h := topk.NewKRankHeap(k)
	for wi, nW := 0, gr.wm.Len(); wi < nW; wi++ {
		budget := h.Threshold()
		total := 0
		rejected := false
		for qi, q := range Q {
			remaining := budget
			if budget != maxInt {
				remaining = budget - total
			}
			if remaining <= 0 {
				rejected = true
				break
			}
			rnk, ok := gr.rankBounded(wi, q, remaining, doms[qi], scratch, c)
			if !ok {
				rejected = true
				break
			}
			total += rnk
		}
		if !rejected {
			h.Offer(topk.Match{WeightIndex: wi, Rank: total})
		}
	}
	return toAggMatches(h.Results())
}

func toAggMatches(ms []topk.Match) []AggMatch {
	out := make([]AggMatch, len(ms))
	for i, m := range ms {
		out[i] = AggMatch{WeightIndex: m.WeightIndex, AggRank: m.Rank}
	}
	return out
}
