package algo

// Tests for the persist layer's constructors and accessors: a GIR
// reassembled from its own precomputed parts (the mmap load path) and
// the copy-on-write derivation helpers must be indistinguishable from a
// freshly built GIR on every query.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gridrank/internal/vec"
)

// partsData builds deterministic uniform point/weight sets.
func partsData(seed int64, np, nw, d int, rangeP float64) ([]vec.Vector, []vec.Vector) {
	rng := rand.New(rand.NewSource(seed))
	P := make([]vec.Vector, np)
	for i := range P {
		v := make(vec.Vector, d)
		for j := range v {
			v[j] = rng.Float64() * rangeP
		}
		P[i] = v
	}
	W := make([]vec.Vector, nw)
	for i := range W {
		v := make(vec.Vector, d)
		sum := 0.0
		for j := range v {
			v[j] = rng.Float64()
			sum += v[j]
		}
		for j := range v {
			v[j] /= sum
		}
		W[i] = v
	}
	return P, W
}

// answersEqual compares both query families on a handful of products.
func answersEqual(t *testing.T, want, got *GIR, label string) {
	t.Helper()
	for qi := 0; qi < want.pm.Len(); qi += want.pm.Len()/4 + 1 {
		q := want.pm.Row(qi)
		w := fmt.Sprintf("%v/%+v", want.ReverseTopK(q, 5, nil), want.ReverseKRanks(q, 5, nil))
		g := fmt.Sprintf("%v/%+v", got.ReverseTopK(q, 5, nil), got.ReverseKRanks(q, 5, nil))
		if w != g {
			t.Fatalf("%s: answers diverge at q=%d:\n want %s\n  got %s", label, qi, w, g)
		}
	}
}

// TestGIRFromPartsEquivalence reassembles a GIR from the artifacts a
// built one exposes — exactly what the GRI3 readers do — and checks the
// result answers identically, unpacked and packed.
func TestGIRFromPartsEquivalence(t *testing.T) {
	P, W := partsData(91, 160, 60, 3, 50)
	for _, bits := range []int{0, 5} {
		base := NewGIRLayout(P, W, 50, 8, Layout{PackedBits: bits})
		got := NewGIRFromParts(GIRParts{
			PM: base.pm, WM: base.wm,
			Grid: base.Grid(),
			PA:   base.PointCells(), WA: base.WeightCells(),
			PG: base.PointGrouping(), WG: base.WeightGrouping(),
			PackedBits: bits,
		})
		if got.PointGroups() != base.PointGroups() || got.WeightGroups() != base.WeightGroups() {
			t.Fatalf("bits=%d: groups %d/%d, want %d/%d", bits,
				got.PointGroups(), got.WeightGroups(), base.PointGroups(), base.WeightGroups())
		}
		if got.PackedBits() != bits {
			t.Fatalf("bits=%d: PackedBits %d", bits, got.PackedBits())
		}
		answersEqual(t, base, got, fmt.Sprintf("bits=%d", bits))
	}
	// A packed width without a matching packed store is a programming
	// error the constructor must refuse loudly.
	base := NewGIRLayout(P, W, 50, 8, Layout{})
	defer func() {
		if recover() == nil {
			t.Error("NewGIRFromParts accepted PackedBits without a packed store")
		}
	}()
	NewGIRFromParts(GIRParts{
		PM: base.pm, WM: base.wm, Grid: base.Grid(),
		PA: base.PointCells(), WA: base.WeightCells(),
		PG: base.PointGrouping(), WG: base.WeightGrouping(),
		PackedBits: 5,
	})
}

// TestGIRCanonicalWeightRange pins the derivation the persist layer
// depends on for byte-identical re-saves: one ulp above the largest
// component, so the maximum itself maps strictly inside the last cell.
func TestGIRCanonicalWeightRange(t *testing.T) {
	_, W := partsData(92, 10, 40, 4, 1)
	wm := vec.NewMatrix(W)
	maxC := 0.0
	for _, w := range W {
		for _, c := range w {
			maxC = math.Max(maxC, c)
		}
	}
	if got := CanonicalWeightRange(wm); got != math.Nextafter(maxC, math.Inf(1)) {
		t.Fatalf("CanonicalWeightRange = %v, max component %v", got, maxC)
	}
}

// TestGIRMutateDerivations checks each copy-on-write derivation against
// a from-scratch build over the same logical data, and the range
// accessors the derivations are gated on.
func TestGIRMutateDerivations(t *testing.T) {
	P, W := partsData(93, 120, 50, 3, 50)
	base := NewGIRLayout(P, W, 50, 8, Layout{PackedBits: 4})
	if base.PointRange() != 50 {
		t.Fatalf("PointRange = %v", base.PointRange())
	}
	if want := CanonicalWeightRange(base.wm); base.WeightRange() != want {
		t.Fatalf("WeightRange = %v, want %v", base.WeightRange(), want)
	}

	// Append a point.
	addP := append(append([]vec.Vector(nil), P...), vec.Vector{25, 10, 40})
	got := base.WithAppendedPoint(vec.NewMatrix(addP))
	want := NewGIRLayout(addP, W, 50, 8, Layout{PackedBits: 4})
	answersEqual(t, want, got, "appended point")

	// Remove a point.
	delP := append(append([]vec.Vector(nil), P[:7]...), P[8:]...)
	got = base.WithRemovedPoint(vec.NewMatrix(delP), 7)
	want = NewGIRLayout(delP, W, 50, 8, Layout{PackedBits: 4})
	answersEqual(t, want, got, "removed point")

	// Append a weight (inside the current weight range, so the grid is
	// reusable and the derivation legal).
	nw := make(vec.Vector, 3)
	copy(nw, W[0])
	addW := append(append([]vec.Vector(nil), W...), nw)
	got = base.WithAppendedWeight(vec.NewMatrix(addW))
	want = newGIR(vec.NewMatrix(P), vec.NewMatrix(addW), base.Grid(), Layout{PackedBits: 4})
	answersEqual(t, want, got, "appended weight")

	// Remove a weight. The canonical range may shrink, so compare
	// against a build pinned to the original grid (what the derivation
	// promises), not a canonical rebuild.
	delW := append(append([]vec.Vector(nil), W[:3]...), W[4:]...)
	got = base.WithRemovedWeight(vec.NewMatrix(delW), 3)
	want = newGIR(vec.NewMatrix(P), vec.NewMatrix(delW), base.Grid(), Layout{PackedBits: 4})
	answersEqual(t, want, got, "removed weight")
}
