package algo

import (
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/vec"
)

// monoContains reports whether λ lies inside any result interval.
func monoContains(ivs []Interval, lambda float64) bool {
	for _, iv := range ivs {
		if lambda >= iv.Lo && lambda <= iv.Hi {
			return true
		}
	}
	return false
}

// rankAt counts products beating q under the weight (λ, 1−λ).
func rankAt(P []vec.Vector, q vec.Vector, lambda float64) int {
	w := vec.Vector{lambda, 1 - lambda}
	fq := vec.Dot(w, q)
	rank := 0
	for _, p := range P {
		if vec.Dot(w, p) < fq {
			rank++
		}
	}
	return rank
}

// The sweep must agree with dense λ-sampling of the definition, up to the
// boundary points themselves (where rank changes discontinuously).
func TestMonoRTKAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(40)
		P := dataset.GenerateProducts(rng, dataset.Uniform, n, 2, 100).Points
		q := P[rng.Intn(n)]
		k := 1 + rng.Intn(5)
		ivs, err := MonoRTK(P, q, k)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s <= 400; s++ {
			lambda := float64(s) / 400
			inside := rankAt(P, q, lambda) < k
			got := monoContains(ivs, lambda)
			if inside != got {
				// Boundary points are included in the closed intervals,
				// so only the open-side mismatch is a bug: sampled-inside
				// but not reported.
				if inside {
					t.Fatalf("trial %d k=%d: λ=%v inside by definition but not in %v",
						trial, k, lambda, ivs)
				}
				if !isBoundary(ivs, lambda) {
					t.Fatalf("trial %d k=%d: λ=%v reported but rank %d ≥ %d (intervals %v)",
						trial, k, lambda, rankAt(P, q, lambda), k, ivs)
				}
			}
		}
		// Intervals must be disjoint, sorted and inside [0, 1].
		for i, iv := range ivs {
			if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
				t.Fatalf("malformed interval %v", iv)
			}
			if i > 0 && iv.Lo <= ivs[i-1].Hi {
				t.Fatalf("overlapping intervals %v", ivs)
			}
		}
	}
}

func isBoundary(ivs []Interval, lambda float64) bool {
	const eps = 1e-9
	for _, iv := range ivs {
		if abs(lambda-iv.Lo) < eps || abs(lambda-iv.Hi) < eps {
			return true
		}
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMonoRTKWholeRange(t *testing.T) {
	// q dominates everything: the whole λ-range qualifies for k=1.
	P := []vec.Vector{{5, 5}, {9, 9}, {7, 8}}
	ivs, err := MonoRTK(P, vec.Vector{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0] != (Interval{0, 1}) {
		t.Fatalf("dominating query: %v", ivs)
	}
}

func TestMonoRTKEmpty(t *testing.T) {
	// q dominated by k products everywhere: empty answer.
	P := []vec.Vector{{1, 1}, {2, 2}}
	ivs, err := MonoRTK(P, vec.Vector{9, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 0 {
		t.Fatalf("dominated query: %v", ivs)
	}
}

func TestMonoRTKSplitRegions(t *testing.T) {
	// q is best at the extremes but beaten in the middle: the answer can
	// be two disjoint intervals. q = (0, 10) excels on attribute 0;
	// p1 = (10, 0) excels on attribute 1; p2 = (4, 4) wins balanced
	// weights against both.
	P := []vec.Vector{{10, 0}, {4, 4}}
	q := vec.Vector{0, 10}
	ivs, err := MonoRTK(P, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	// For k=1 q must beat both products: at λ=1 (all weight on attr 0)
	// f(q)=0 wins; at λ=0, f(q)=10 loses to p1's 0. So expect a single
	// high-λ interval.
	if len(ivs) == 0 {
		t.Fatal("expected a qualifying region")
	}
	if !monoContains(ivs, 1) {
		t.Errorf("λ=1 must qualify: %v", ivs)
	}
	if monoContains(ivs, 0) {
		t.Errorf("λ=0 must not qualify: %v", ivs)
	}
}

func TestMonoRTKErrors(t *testing.T) {
	if _, err := MonoRTK([]vec.Vector{{1, 2, 3}}, vec.Vector{1, 2, 3}, 1); err == nil {
		t.Error("3-d data must be rejected")
	}
	if _, err := MonoRTK([]vec.Vector{{1, 2}}, vec.Vector{1}, 1); err == nil {
		t.Error("1-d query must be rejected")
	}
	if _, err := MonoRTK([]vec.Vector{{1, 2}}, vec.Vector{1, 2}, 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := MonoRTK([]vec.Vector{{1, 2}, {1}}, vec.Vector{1, 2}, 1); err == nil {
		t.Error("ragged products must be rejected")
	}
}

func TestMergeIntervals(t *testing.T) {
	got := mergeIntervals([]Interval{{0, 0.3}, {0.3, 0.5}, {0.7, 1}})
	if len(got) != 2 || got[0] != (Interval{0, 0.5}) || got[1] != (Interval{0.7, 1}) {
		t.Fatalf("merge: %v", got)
	}
	if mergeIntervals(nil) != nil {
		t.Error("nil merge")
	}
}
