package algo

import (
	"fmt"

	"gridrank/internal/grid"
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// SparseGIR is the sparse-preference optimization the paper sketches in
// its future work (Section 7): "in practice, a user is normally interested
// in a few attributes of the products", i.e. most components of w are
// exactly zero. For such weights:
//
//   - a zero component contributes exactly 0 to the score, so both Grid
//     bounds can skip the dimension entirely — the dense upper bound of
//     Equation 4 would instead add α_p[p^(a)+1]·α_w[1] > 0 per zero
//     dimension, so skipping both SPEEDS UP and TIGHTENS the filter;
//   - exact refinements and f_w(q) shrink from d to nnz(w) multiplications.
//
// Each weight stores only its non-zero dimensions and their cells. The
// query semantics are identical to GIR (and validated against it).
type SparseGIR struct {
	P []vec.Vector
	W []vec.Vector

	g  *grid.Grid
	pa *grid.Index
	// wDims[wi] lists w's non-zero dimensions; wCells[wi] the matching
	// weight cells. Stored flat per weight, built once at construction.
	wDims  [][]int32
	wCells [][]uint8
}

// NewSparseGIR builds the sparse variant. It accepts any weight set —
// dense weights simply get full dimension lists — but only pays off when
// weights are mostly zero.
func NewSparseGIR(P, W []vec.Vector, rangeP float64, n int) *SparseGIR {
	validateSets(P, W)
	if n < 1 {
		panic(fmt.Sprintf("algo: grid partitions %d < 1", n))
	}
	g := grid.New(n, rangeP, maxComponent(W))
	s := &SparseGIR{
		P:      P,
		W:      W,
		g:      g,
		pa:     grid.NewPointIndex(g, P),
		wDims:  make([][]int32, len(W)),
		wCells: make([][]uint8, len(W)),
	}
	for wi, w := range W {
		for dim, x := range w {
			if x != 0 {
				s.wDims[wi] = append(s.wDims[wi], int32(dim))
				s.wCells[wi] = append(s.wCells[wi], g.CellW(x))
			}
		}
	}
	return s
}

// Name implements RTKAlgorithm and RKRAlgorithm.
func (s *SparseGIR) Name() string { return "GIR-SPARSE" }

// AvgNonZero returns the average number of non-zero weight components —
// the sparsity the construction discovered.
func (s *SparseGIR) AvgNonZero() float64 {
	total := 0
	for _, dims := range s.wDims {
		total += len(dims)
	}
	return float64(total) / float64(len(s.wDims))
}

// sparseDot computes f_w(p) over the non-zero dimensions only.
func sparseDot(w, p vec.Vector, dims []int32) float64 {
	var f float64
	for _, dim := range dims {
		f += w[dim] * p[dim]
	}
	return f
}

// rankBounded is GInTop-k restricted to the weight's non-zero dimensions,
// with inline Case-3 refinement so early termination fires at the same
// pair as the dense scans (see GIR.rankBounded).
func (s *SparseGIR) rankBounded(wi int, q vec.Vector, cutoff int, dom *domin, c *stats.Counters) (int, bool) {
	w := s.W[wi]
	dims := s.wDims[wi]
	cells := s.wCells[wi]
	fq := sparseDot(w, q, dims)
	if c != nil {
		c.PairwiseMults++
	}
	rnk := dom.count
	if rnk >= cutoff {
		return cutoff, false
	}
	for pj := range s.P {
		if dom.has(pj) {
			continue
		}
		pa := s.pa.Row(pj)
		if c != nil {
			c.BoundSums++
			c.ApproxVisited++
		}
		var upper float64
		for di, dim := range dims {
			upper += s.g.At(int(pa[dim])+1, int(cells[di])+1)
		}
		if upper < fq { // Case 1
			rnk++
			if c != nil {
				c.Filtered++
			}
			dom.observe(pj, s.P[pj], q)
			if rnk >= cutoff {
				return cutoff, false
			}
			continue
		}
		var lower float64
		for di, dim := range dims {
			lower += s.g.At(int(pa[dim]), int(cells[di]))
		}
		if lower <= fq {
			// Case 3: refine inline.
			if c != nil {
				c.PairwiseMults++
				c.Refinements++
				c.PointsVisited++
			}
			if sparseDot(w, s.P[pj], dims) < fq {
				rnk++
				dom.observe(pj, s.P[pj], q)
				if rnk >= cutoff {
					return cutoff, false
				}
			}
		} else if c != nil { // Case 2
			c.Filtered++
		}
	}
	return rnk, true
}

// ReverseTopK mirrors GIRTop-k on the sparse representation.
func (s *SparseGIR) ReverseTopK(q vec.Vector, k int, c *stats.Counters) []int {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil
	}
	dom := newDomin(len(s.P))
	var res []int
	for wi := range s.W {
		if _, ok := s.rankBounded(wi, q, k, dom, c); ok {
			res = append(res, wi)
		}
		if dom.count >= k {
			return nil
		}
	}
	return res
}

// ReverseKRanks mirrors GIRk-Rank on the sparse representation.
func (s *SparseGIR) ReverseKRanks(q vec.Vector, k int, c *stats.Counters) []topk.Match {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil
	}
	h := topk.NewKRankHeap(k)
	dom := newDomin(len(s.P))
	for wi := range s.W {
		if rnk, ok := s.rankBounded(wi, q, h.Threshold(), dom, c); ok {
			h.Offer(topk.Match{WeightIndex: wi, Rank: rnk})
		}
	}
	return h.Results()
}
