package algo

import (
	"math"
	"testing"
	"testing/quick"

	"gridrank/internal/vec"
)

// rawInstance decodes an arbitrary byte string into a small query
// instance: dimension, point set, weight set, query point and k. Using
// testing/quick's generator (rather than our distribution generators)
// exercises degenerate shapes the workload generators never produce:
// zero attributes, extreme skew, single-point sets, k beyond |P|.
func rawInstance(data []byte) (P, W []vec.Vector, q vec.Vector, k int, ok bool) {
	if len(data) < 8 {
		return nil, nil, nil, 0, false
	}
	d := int(data[0])%4 + 1
	nP := int(data[1])%12 + 1
	nW := int(data[2])%8 + 1
	k = int(data[3])%(nP+2) + 1
	rest := data[4:]
	at := 0
	next := func() float64 {
		if at >= len(rest) {
			at = 0
		}
		v := float64(rest[at])
		at++
		return v
	}
	P = make([]vec.Vector, nP)
	for i := range P {
		p := make(vec.Vector, d)
		for j := range p {
			p[j] = next() // 0..255, includes exact duplicates and zeros
		}
		P[i] = p
	}
	W = make([]vec.Vector, nW)
	for i := range W {
		w := make(vec.Vector, d)
		for {
			for j := range w {
				w[j] = next()
			}
			if vec.Normalize(w) {
				break
			}
			// All-zero draw: force a legal weight.
			w[0] = 1
			break
		}
		W[i] = w
	}
	q = P[int(data[4])%nP]
	return P, W, q, k, true
}

// Property: GIR at several grid resolutions and SIM agree with brute
// force on arbitrary byte-derived instances.
func TestQuickGIRMatchesBrute(t *testing.T) {
	f := func(data []byte) bool {
		P, W, q, k, ok := rawInstance(data)
		if !ok {
			return true
		}
		brute := NewBrute(P, W)
		wantRTK := brute.ReverseTopK(q, k, nil)
		wantRKR := brute.ReverseKRanks(q, k, nil)
		for _, n := range []int{1, 3, 32} {
			gir := NewGIR(P, W, 256, n)
			if !equalInts(gir.ReverseTopK(q, k, nil), wantRTK) {
				return false
			}
			if !equalMatches(gir.ReverseKRanks(q, k, nil), wantRKR) {
				return false
			}
		}
		sim := NewSIM(P, W)
		return equalInts(sim.ReverseTopK(q, k, nil), wantRTK) &&
			equalMatches(sim.ReverseKRanks(q, k, nil), wantRKR)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: the tree-based baselines agree with brute force on the same
// raw instances.
func TestQuickTreesMatchBrute(t *testing.T) {
	f := func(data []byte) bool {
		P, W, q, k, ok := rawInstance(data)
		if !ok {
			return true
		}
		brute := NewBrute(P, W)
		bbr := NewBBR(P, W, 3)
		if !equalInts(bbr.ReverseTopK(q, k, nil), brute.ReverseTopK(q, k, nil)) {
			return false
		}
		mpa, err := NewMPA(P, W, 3, 4)
		if err != nil {
			// Weights are normalized, so the histogram must accept them.
			return false
		}
		return equalMatches(mpa.ReverseKRanks(q, k, nil), brute.ReverseKRanks(q, k, nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: RTK answers are exactly the weights whose rank is below k
// (the definitional identity between the two queries' primitives).
func TestQuickRTKDefinitionalIdentity(t *testing.T) {
	f := func(data []byte) bool {
		P, W, q, k, ok := rawInstance(data)
		if !ok {
			return true
		}
		gir := NewGIR(P, W, 256, 8)
		got := gir.ReverseTopK(q, k, nil)
		inAnswer := map[int]bool{}
		for _, wi := range got {
			inAnswer[wi] = true
		}
		for wi, w := range W {
			fq := vec.Dot(w, q)
			rank := 0
			for _, p := range P {
				if vec.Dot(w, p) < fq {
					rank++
				}
			}
			if inAnswer[wi] != (rank < k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: RKR results are sorted by (rank, index) and each reported
// rank matches a direct recount.
func TestQuickRKRSortedAndExact(t *testing.T) {
	f := func(data []byte) bool {
		P, W, q, k, ok := rawInstance(data)
		if !ok {
			return true
		}
		gir := NewGIR(P, W, 256, 8)
		got := gir.ReverseKRanks(q, k, nil)
		wantLen := k
		if len(W) < k {
			wantLen = len(W)
		}
		if len(got) != wantLen {
			return false
		}
		for i, m := range got {
			if i > 0 {
				prev := got[i-1]
				if m.Rank < prev.Rank ||
					(m.Rank == prev.Rank && m.WeightIndex < prev.WeightIndex) {
					return false
				}
			}
			fq := vec.Dot(W[m.WeightIndex], q)
			rank := 0
			for _, p := range P {
				if vec.Dot(W[m.WeightIndex], p) < fq {
					rank++
				}
			}
			if rank != m.Rank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// NaN-free guarantee: all algorithms tolerate weights with zero entries
// (scores can tie at exactly 0).
func TestZeroHeavyWeights(t *testing.T) {
	P := []vec.Vector{{0, 5}, {3, 0}, {0, 0}, {7, 7}}
	W := []vec.Vector{{1, 0}, {0, 1}, {0.5, 0.5}}
	brute := NewBrute(P, W)
	gir := NewGIR(P, W, 8, 4)
	sim := NewSIM(P, W)
	for qi, q := range P {
		for k := 1; k <= 4; k++ {
			want := brute.ReverseTopK(q, k, nil)
			if !equalInts(gir.ReverseTopK(q, k, nil), want) {
				t.Fatalf("GIR q=%d k=%d", qi, k)
			}
			if !equalInts(sim.ReverseTopK(q, k, nil), want) {
				t.Fatalf("SIM q=%d k=%d", qi, k)
			}
			wantKR := brute.ReverseKRanks(q, k, nil)
			if !equalMatches(gir.ReverseKRanks(q, k, nil), wantKR) {
				t.Fatalf("GIR RKR q=%d k=%d", qi, k)
			}
		}
	}
	if math.IsNaN(vec.Dot(W[0], P[2])) {
		t.Fatal("unexpected NaN")
	}
}
