package algo

import (
	"fmt"
	"sort"

	"gridrank/internal/histogram"
	"gridrank/internal/rtree"
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// MPA is the marked pruning approach for reverse k-ranks (Zhang et al.,
// VLDB 2014), the paper's tree-based RKR comparator: W is grouped by a
// d-dimensional equi-width histogram and P is indexed in an R-tree. Each
// bucket gets a group-level rank lower bound (points beating q for every
// weight in the bucket's box, counted against the P-tree); buckets whose
// bound cannot beat the current k-th best rank are "marked" and pruned
// wholesale, and surviving buckets refine their weights individually with
// bounded rank counting.
type MPA struct {
	P []vec.Vector
	W []vec.Vector

	pt   *rtree.Tree
	hist *histogram.Histogram
}

// NewMPA builds the P R-tree and the W histogram (c intervals per
// dimension, the paper's c = 5 by default). Weights must lie in [0, 1].
func NewMPA(P, W []vec.Vector, capacity, intervals int) (*MPA, error) {
	validateSets(P, W)
	h, err := histogram.New(W, intervals)
	if err != nil {
		return nil, fmt.Errorf("algo: building MPA histogram: %w", err)
	}
	return &MPA{P: P, W: W, pt: rtree.Bulk(P, capacity), hist: h}, nil
}

// Name implements RKRAlgorithm.
func (m *MPA) Name() string { return "MPA" }

// PointTree exposes the P R-tree for instrumentation.
func (m *MPA) PointTree() *rtree.Tree { return m.pt }

// Histogram exposes the weight histogram for instrumentation.
func (m *MPA) Histogram() *histogram.Histogram { return m.hist }

// ReverseKRanks computes the k best weights in two phases: group-level
// lower bounds per bucket (ordered ascending so the heap's threshold
// tightens as early as possible), then per-weight refinement of the
// buckets that survive the mark test.
func (m *MPA) ReverseKRanks(q vec.Vector, k int, c *stats.Counters) []topk.Match {
	if c != nil {
		defer func() { c.Queries++ }()
	}
	if k <= 0 {
		return nil
	}
	buckets := m.hist.Buckets()
	type scored struct {
		b  *histogram.Bucket
		lb int
	}
	order := make([]scored, len(buckets))
	for i, b := range buckets {
		if c != nil {
			c.CellsVisited++
		}
		order[i] = scored{b: b, lb: countBeatAll(m.pt.Root(), q, b.Lo, b.Hi, len(m.P), c)}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].lb != order[b].lb {
			return order[a].lb < order[b].lb
		}
		// Deterministic order on ties: earliest weight in the bucket.
		return order[a].b.Weights[0] < order[b].b.Weights[0]
	})
	h := topk.NewKRankHeap(k)
	for _, sc := range order {
		// Mark test: the group bound lower-bounds every member's rank.
		// Unlike the index-ordered scans, MPA visits weights out of index
		// order, so a weight whose rank equals the threshold can still win
		// its tie-break; pruning therefore requires lb strictly above the
		// threshold, and refinement counts up to threshold+1.
		if sc.lb > h.Threshold() {
			if c != nil {
				c.WeightsPruned += int64(len(sc.b.Weights))
			}
			continue
		}
		for _, wi := range sc.b.Weights {
			w := m.W[wi]
			fq := vec.Dot(w, q)
			if c != nil {
				c.PairwiseMults++
			}
			cutoff := h.Threshold()
			if cutoff < maxInt {
				cutoff++
			}
			if rnk, ok := treeRankBounded(m.pt.Root(), w, fq, cutoff, c); ok {
				h.Offer(topk.Match{WeightIndex: wi, Rank: rnk})
			}
		}
	}
	return h.Results()
}
