package algo

import (
	"fmt"
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// figure1 is the worked example of the paper's Figure 1.
var (
	figure1P = []vec.Vector{
		{0.6, 0.7}, // p1
		{0.2, 0.3}, // p2
		{0.1, 0.6}, // p3
		{0.7, 0.5}, // p4
		{0.8, 0.2}, // p5
	}
	figure1W = []vec.Vector{
		{0.8, 0.2}, // Tom
		{0.3, 0.7}, // Jerry
		{0.9, 0.1}, // Spike
	}
)

// rtkAlgos builds every RTK implementation over the same data.
func rtkAlgos(P, W []vec.Vector, rangeP float64) []RTKAlgorithm {
	return []RTKAlgorithm{
		NewBrute(P, W),
		NewSIM(P, W),
		NewGIR(P, W, rangeP, DefaultPartitions),
		NewGIR(P, W, rangeP, 4), // coarse grid stresses the refinement path
		NewBBR(P, W, 8),
		NewRTA(P, W),
	}
}

// rkrAlgos builds every RKR implementation over the same data.
func rkrAlgos(t *testing.T, P, W []vec.Vector, rangeP float64) []RKRAlgorithm {
	mpa, err := NewMPA(P, W, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	mpaFine, err := NewMPA(P, W, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	return []RKRAlgorithm{
		NewBrute(P, W),
		NewSIM(P, W),
		NewGIR(P, W, rangeP, DefaultPartitions),
		NewGIR(P, W, rangeP, 4),
		mpa,
		mpaFine,
	}
}

func TestRTKMatchesFigure1(t *testing.T) {
	// Figure 1(b): RT-2 of p1 = ∅, p2 = {Tom, Jerry, Spike}, p3 = {Tom,
	// Spike}, p4 = ∅, p5 = {Jerry}.
	want := [][]int{nil, {0, 1, 2}, {0, 2}, nil, {1}}
	for _, a := range rtkAlgos(figure1P, figure1W, 1) {
		for qi, q := range figure1P {
			got := a.ReverseTopK(q, 2, nil)
			if !equalInts(got, want[qi]) {
				t.Errorf("%s: RT-2(p%d) = %v, want %v", a.Name(), qi+1, got, want[qi])
			}
		}
	}
}

func TestRKRMatchesFigure1(t *testing.T) {
	// Figure 1(c): R1-R of p1 = Tom (rank 3 ties with Spike, Tom wins by
	// index), p2 = Jerry, p3 = Tom (ties Spike), p4 = Tom (3-way tie),
	// p5 = Jerry. Ranks here are 0-based counts of strictly better points.
	want := []topk.Match{
		{WeightIndex: 0, Rank: 2}, // p1: Tom, 2 better points
		{WeightIndex: 1, Rank: 0}, // p2: Jerry, rank 1st
		{WeightIndex: 0, Rank: 0}, // p3: Tom
		{WeightIndex: 0, Rank: 3}, // p4: Tom
		{WeightIndex: 1, Rank: 1}, // p5: Jerry
	}
	for _, a := range rkrAlgos(t, figure1P, figure1W, 1) {
		for qi, q := range figure1P {
			got := a.ReverseKRanks(q, 1, nil)
			if len(got) != 1 || got[0] != want[qi] {
				t.Errorf("%s: R1-R(p%d) = %+v, want %+v", a.Name(), qi+1, got, want[qi])
			}
		}
	}
}

// The flagship test: every algorithm returns byte-identical answers to the
// brute-force reference across data distributions, dimensions and k.
func TestCrossValidationAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	configs := []struct {
		pd, wd dataset.Distribution
		d      int
		nP, nW int
	}{
		{dataset.Uniform, dataset.Uniform, 2, 300, 120},
		{dataset.Uniform, dataset.Uniform, 6, 250, 100},
		{dataset.Clustered, dataset.Uniform, 4, 250, 100},
		{dataset.AntiCorrelated, dataset.Clustered, 5, 250, 100},
		{dataset.Normal, dataset.Exponential, 3, 250, 100},
		{dataset.Exponential, dataset.Normal, 8, 200, 80},
		{dataset.Uniform, dataset.Clustered, 12, 150, 60},
	}
	for _, cfg := range configs {
		name := fmt.Sprintf("%s-%s-d%d", cfg.pd, cfg.wd, cfg.d)
		t.Run(name, func(t *testing.T) {
			P := dataset.GenerateProducts(rng, cfg.pd, cfg.nP, cfg.d, dataset.DefaultRange)
			W := dataset.GenerateWeights(rng, cfg.wd, cfg.nW, cfg.d)
			rtks := rtkAlgos(P.Points, W.Points, P.Range)
			rkrs := rkrAlgos(t, P.Points, W.Points, P.Range)
			for qi := 0; qi < 6; qi++ {
				q := P.Points[rng.Intn(len(P.Points))]
				for _, k := range []int{1, 5, 37} {
					want := rtks[0].ReverseTopK(q, k, nil)
					for _, a := range rtks[1:] {
						got := a.ReverseTopK(q, k, nil)
						if !equalInts(got, want) {
							t.Fatalf("%s RTK k=%d disagrees with brute force:\ngot  %v\nwant %v",
								a.Name(), k, got, want)
						}
					}
					wantKR := rkrs[0].ReverseKRanks(q, k, nil)
					for _, a := range rkrs[1:] {
						got := a.ReverseKRanks(q, k, nil)
						if !equalMatches(got, wantKR) {
							t.Fatalf("%s RKR k=%d disagrees with brute force:\ngot  %+v\nwant %+v",
								a.Name(), k, got, wantKR)
						}
					}
				}
			}
		})
	}
}

// Query points not drawn from P (arbitrary external products) must agree too.
func TestCrossValidationExternalQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 300, 5, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 100, 5)
	rtks := rtkAlgos(P.Points, W.Points, P.Range)
	rkrs := rkrAlgos(t, P.Points, W.Points, P.Range)
	for qi := 0; qi < 10; qi++ {
		q := make(vec.Vector, 5)
		for i := range q {
			q[i] = rng.Float64() * P.Range
		}
		want := rtks[0].ReverseTopK(q, 10, nil)
		for _, a := range rtks[1:] {
			if got := a.ReverseTopK(q, 10, nil); !equalInts(got, want) {
				t.Fatalf("%s external-q RTK: got %v want %v", a.Name(), got, want)
			}
		}
		wantKR := rkrs[0].ReverseKRanks(q, 10, nil)
		for _, a := range rkrs[1:] {
			if got := a.ReverseKRanks(q, 10, nil); !equalMatches(got, wantKR) {
				t.Fatalf("%s external-q RKR: got %+v want %+v", a.Name(), got, wantKR)
			}
		}
	}
}

// Degenerate data: ties everywhere (many duplicate points and weights).
func TestCrossValidationWithHeavyTies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := dataset.GenerateProducts(rng, dataset.Uniform, 40, 3, 100)
	var P []vec.Vector
	for i := 0; i < 200; i++ {
		P = append(P, base.Points[i%len(base.Points)])
	}
	wbase := dataset.GenerateWeights(rng, dataset.Uniform, 15, 3)
	var W []vec.Vector
	for i := 0; i < 60; i++ {
		W = append(W, wbase.Points[i%len(wbase.Points)])
	}
	rtks := rtkAlgos(P, W, 100)
	rkrs := rkrAlgos(t, P, W, 100)
	for qi := 0; qi < 8; qi++ {
		q := P[rng.Intn(len(P))]
		for _, k := range []int{1, 7, 25} {
			want := rtks[0].ReverseTopK(q, k, nil)
			for _, a := range rtks[1:] {
				if got := a.ReverseTopK(q, k, nil); !equalInts(got, want) {
					t.Fatalf("%s ties RTK k=%d: got %v want %v", a.Name(), k, got, want)
				}
			}
			wantKR := rkrs[0].ReverseKRanks(q, k, nil)
			for _, a := range rkrs[1:] {
				if got := a.ReverseKRanks(q, k, nil); !equalMatches(got, wantKR) {
					t.Fatalf("%s ties RKR k=%d: got %+v want %+v", a.Name(), k, got, wantKR)
				}
			}
		}
	}
}

func TestEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 50, 3, 100)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 20, 3)
	q := P.Points[0]
	for _, a := range rtkAlgos(P.Points, W.Points, P.Range) {
		if got := a.ReverseTopK(q, 0, nil); got != nil {
			t.Errorf("%s: k=0 should return nil", a.Name())
		}
		if got := a.ReverseTopK(q, -1, nil); got != nil {
			t.Errorf("%s: negative k should return nil", a.Name())
		}
		// k >= |P|: every weight qualifies.
		got := a.ReverseTopK(q, len(P.Points), nil)
		if len(got) != len(W.Points) {
			t.Errorf("%s: k=|P| should return all %d weights, got %d",
				a.Name(), len(W.Points), len(got))
		}
	}
	for _, a := range rkrAlgos(t, P.Points, W.Points, P.Range) {
		if got := a.ReverseKRanks(q, 0, nil); got != nil {
			t.Errorf("%s: k=0 should return nil", a.Name())
		}
		// k > |W|: all weights returned, ordered by (rank, index).
		got := a.ReverseKRanks(q, len(W.Points)+5, nil)
		if len(got) != len(W.Points) {
			t.Errorf("%s: k>|W| should return all %d weights, got %d",
				a.Name(), len(W.Points), len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Rank < got[i-1].Rank ||
				(got[i].Rank == got[i-1].Rank && got[i].WeightIndex < got[i-1].WeightIndex) {
				t.Errorf("%s: results out of order at %d: %+v", a.Name(), i, got)
			}
		}
	}
}

func TestSingletonSets(t *testing.T) {
	P := []vec.Vector{{5, 5}}
	W := []vec.Vector{{0.5, 0.5}}
	for _, a := range rtkAlgos(P, W, 10) {
		got := a.ReverseTopK(vec.Vector{5, 5}, 1, nil)
		if !equalInts(got, []int{0}) {
			t.Errorf("%s: singleton RTK = %v, want [0]", a.Name(), got)
		}
		// A query point dominated by the single P point.
		got = a.ReverseTopK(vec.Vector{9, 9}, 1, nil)
		if got != nil && len(got) != 0 {
			t.Errorf("%s: dominated singleton RTK = %v, want empty", a.Name(), got)
		}
	}
}

// The Domin short-circuit of Algorithm 2: a query point dominated by >= k
// points yields an empty RTK answer and the scan may stop early.
func TestDominShortCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 200, 4, 100)
	// Craft q near the top corner: it is dominated by nearly everything.
	q := vec.Vector{99, 99, 99, 99}
	W := dataset.GenerateWeights(rng, dataset.Uniform, 50, 4)
	var cSim, cBrute stats.Counters
	sim := NewSIM(P.Points, W.Points)
	brute := NewBrute(P.Points, W.Points)
	gotS := sim.ReverseTopK(q, 5, &cSim)
	gotB := brute.ReverseTopK(q, 5, &cBrute)
	if !equalInts(gotS, gotB) {
		t.Fatalf("SIM %v != brute %v", gotS, gotB)
	}
	if len(gotB) != 0 {
		t.Fatalf("corner query should have empty RTK, got %v", gotB)
	}
	if cSim.PairwiseMults >= cBrute.PairwiseMults/10 {
		t.Errorf("Domin short-circuit should save >10x: SIM %d vs brute %d mults",
			cSim.PairwiseMults, cBrute.PairwiseMults)
	}
}

// GIR must do far fewer multiplications than SIM (the paper's central
// claim) while returning identical results.
func TestGIRSavesMultiplications(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 2000, 6, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 300, 6)
	gir := NewGIR(P.Points, W.Points, P.Range, 32)
	sim := NewSIM(P.Points, W.Points)
	var cGIR, cSIM stats.Counters
	for qi := 0; qi < 5; qi++ {
		q := P.Points[rng.Intn(len(P.Points))]
		if !equalMatches(gir.ReverseKRanks(q, 10, &cGIR), sim.ReverseKRanks(q, 10, &cSIM)) {
			t.Fatal("GIR and SIM disagree")
		}
	}
	if cGIR.PairwiseMults*2 >= cSIM.PairwiseMults {
		t.Errorf("GIR should save >2x multiplications: GIR %d vs SIM %d",
			cGIR.PairwiseMults, cSIM.PairwiseMults)
	}
	// Theorem 1's model predicts > 99% here, but it assumes a bound width
	// of r·d/n² while the true grid-cell product widths grow with the cell
	// index; the realized examined-pair rate at n=32, d=6 under the
	// threshold-driven RKR workload is ≈ 80% (see EXPERIMENTS.md).
	if rate := cGIR.FilterRate(); rate < 0.75 {
		t.Errorf("n=32 d=6 filter rate %v, want > 0.75", rate)
	}
}

// Counters must be populated by every algorithm.
func TestCountersPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	P := dataset.GenerateProducts(rng, dataset.Uniform, 150, 4, 100)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 60, 4)
	q := P.Points[0]
	for _, a := range rtkAlgos(P.Points, W.Points, P.Range) {
		var c stats.Counters
		a.ReverseTopK(q, 10, &c)
		if c.Queries != 1 {
			t.Errorf("%s: Queries = %d, want 1", a.Name(), c.Queries)
		}
		if c.PairwiseMults == 0 {
			t.Errorf("%s: no pairwise multiplications recorded", a.Name())
		}
	}
	for _, a := range rkrAlgos(t, P.Points, W.Points, P.Range) {
		var c stats.Counters
		a.ReverseKRanks(q, 10, &c)
		if c.Queries != 1 || c.PairwiseMults == 0 {
			t.Errorf("%s: counters not populated: %+v", a.Name(), c)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	P := []vec.Vector{{1, 2}}
	W := []vec.Vector{{0.5, 0.5}}
	mustPanic("empty P", func() { NewBrute(nil, W) })
	mustPanic("empty W", func() { NewSIM(P, nil) })
	mustPanic("ragged P", func() { NewGIR([]vec.Vector{{1, 2}, {1}}, W, 10, 4) })
	mustPanic("ragged W", func() { NewBBR(P, []vec.Vector{{0.5, 0.5}, {1}}, 4) })
	mustPanic("bad n", func() { NewGIR(P, W, 10, 0) })
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalMatches(a, b []topk.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
