package algo

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gridrank/internal/dataset"
	"gridrank/internal/stats"
	"gridrank/internal/topk"
	"gridrank/internal/vec"
)

// This file cross-validates the cell-grouped scan against the pre-grouping
// per-point implementation, embedded below verbatim (modulo counters) as
// the reference. Grouping, visit reordering and state pooling are pure
// execution-strategy changes: answers must be identical element for
// element on every dataset, at every worker count — that is the contract
// DESIGN.md §9 argues and this test enforces.

// refRankBounded is the pre-grouping GInTop-k: a per-point scan over
// P^(A) with the same Case 1/2/3 classification, Domin buffer and cutoff
// semantics the grouped scan re-derives per group.
func refRankBounded(gr *GIR, wi int, q vec.Vector, cutoff int, dom *domin, bnd []float64) (int, bool) {
	w := gr.Weight(wi)
	fq := vec.Dot(w, q)
	rnk := dom.count
	if rnk >= cutoff {
		return cutoff, false
	}
	wa := gr.wa.Row(wi)
	d := len(wa)
	n2 := 2 * gr.g.N()
	for i, wc := range wa {
		loCol := gr.g.LowerColumn(wc)
		upCol := gr.g.UpperColumn(wc)
		row := bnd[i*n2 : (i+1)*n2]
		for pc := range loCol {
			row[2*pc] = loCol[pc]
			row[2*pc+1] = upCol[pc]
		}
	}
	approx := gr.pa.Cells()
	for pj, nP := 0, gr.NumPoints(); pj < nP; pj++ {
		if dom.has(pj) {
			continue
		}
		pa := approx[pj*d : pj*d+d]
		var u, l float64
		off := 0
		for _, pc := range pa {
			j := off + 2*int(pc)
			l += bnd[j]
			u += bnd[j+1]
			off += n2
		}
		if u < fq { // Case 1
			rnk++
			if !gr.DisableDomin {
				dom.observe(pj, gr.Point(pj), q)
			}
			if rnk >= cutoff {
				return cutoff, false
			}
			continue
		}
		if l <= fq { // Case 3
			if vec.Dot(w, gr.Point(pj)) < fq {
				rnk++
				if !gr.DisableDomin {
					dom.observe(pj, gr.Point(pj), q)
				}
				if rnk >= cutoff {
					return cutoff, false
				}
			}
		}
	}
	return rnk, true
}

// refReverseTopK is the pre-grouping sequential GIRTop-k: ascending
// weight order, dominator early exit.
func refReverseTopK(gr *GIR, q vec.Vector, k int) []int {
	if k <= 0 {
		return nil
	}
	dom := newDomin(gr.NumPoints())
	bnd := make([]float64, gr.pa.Dim()*2*gr.g.N())
	var res []int
	for wi, nW := 0, gr.NumWeights(); wi < nW; wi++ {
		if _, ok := refRankBounded(gr, wi, q, k, dom, bnd); ok {
			res = append(res, wi)
		}
		if dom.count >= k {
			return nil
		}
	}
	return res
}

// refReverseKRanks is the pre-grouping sequential GIRk-Rank: ascending
// weight order, heap threshold as the cutoff (safe only because the visit
// order is ascending by index — ties keep the earlier weight).
func refReverseKRanks(gr *GIR, q vec.Vector, k int) []topk.Match {
	if k <= 0 {
		return nil
	}
	dom := newDomin(gr.NumPoints())
	bnd := make([]float64, gr.pa.Dim()*2*gr.g.N())
	h := topk.NewKRankHeap(k)
	for wi, nW := 0, gr.NumWeights(); wi < nW; wi++ {
		if rnk, ok := refRankBounded(gr, wi, q, h.Threshold(), dom, bnd); ok {
			h.Offer(topk.Match{WeightIndex: wi, Rank: rnk})
		}
	}
	return h.Results()
}

// catalogSet samples n vectors (with repetition) from a base catalog of
// distinct vectors, producing the duplicate-heavy datasets that stress
// multi-member cell groups.
func catalogSet(rng *rand.Rand, base []vec.Vector, n int) []vec.Vector {
	out := make([]vec.Vector, n)
	for i := range out {
		out[i] = base[rng.Intn(len(base))]
	}
	return out
}

// TestGroupedVsReference cross-validates grouped GIR (sequential and at
// workers 2, 4, 8) against the embedded pre-grouping reference and brute
// force across 50+ datasets: UN/CL/AC/NO products × UN/CL/EX weights,
// d ∈ 2..10, grid resolutions down to n=1 (every point in one cell), and
// duplicate-heavy catalog-sampled sets. Answers must be identical
// element for element everywhere. Run under -race in CI.
func TestGroupedVsReference(t *testing.T) {
	ctx := context.Background()
	datasets := 56
	if testing.Short() {
		datasets = 18
	}
	pdists := []dataset.Distribution{dataset.Uniform, dataset.Clustered, dataset.AntiCorrelated, dataset.Normal}
	wdists := []dataset.Distribution{dataset.Uniform, dataset.Clustered, dataset.Exponential}
	for i := 0; i < datasets; i++ {
		rng := rand.New(rand.NewSource(int64(7000 + i)))
		pd := pdists[i%len(pdists)]
		wd := wdists[i%len(wdists)]
		d := 2 + rng.Intn(9)                // 2..10
		nP := 30 + rng.Intn(150)            // 30..179
		nW := 25 + rng.Intn(120)            // 25..144
		n := []int{1, 2, 4, 8, 16, 32}[i%6] // coarse grids maximize grouping
		dup := i%3 == 0                     // every third dataset is catalog-sampled
		name := fmt.Sprintf("%02d-%s-%s-d%d-P%d-W%d-n%d-dup%v", i, pd, wd, d, nP, nW, n, dup)
		t.Run(name, func(t *testing.T) {
			P := dataset.GenerateProducts(rng, pd, nP, d, dataset.DefaultRange)
			W := dataset.GenerateWeights(rng, wd, nW, d)
			points, weights := P.Points, W.Points
			if dup {
				// Collapse onto a small catalog: ~5 members per distinct
				// vector, so most groups have many members.
				points = catalogSet(rng, points[:1+nP/5], nP)
				weights = catalogSet(rng, weights[:1+nW/5], nW)
			}
			brute := NewBrute(points, weights)
			gir := NewGIR(points, weights, P.Range, n)
			ref := NewGIR(points, weights, P.Range, n)
			// Packed layouts at every width that can encode this grid's
			// cells; their answers (and sequential counters) must be
			// byte-identical to the unpacked index at every worker count.
			var packed []*GIR
			for _, b := range []int{4, 5, 6, 8} {
				if 1<<b >= n {
					packed = append(packed, NewGIRLayout(points, weights, P.Range, n, Layout{PackedBits: b}))
				}
			}
			for qi := 0; qi < 2; qi++ {
				var q vec.Vector
				if qi == 0 {
					q = points[rng.Intn(nP)]
				} else {
					q = make(vec.Vector, d)
					for j := range q {
						q[j] = rng.Float64() * P.Range
					}
				}
				for _, k := range []int{1, 5, nW} {
					wantRTK := refReverseTopK(ref, q, k)
					wantRKR := refReverseKRanks(ref, q, k)
					// The reference must itself agree with brute force,
					// otherwise it proves nothing.
					if b := brute.ReverseTopK(q, k, nil); !equalInts(wantRTK, b) {
						t.Fatalf("reference RTK k=%d disagrees with brute: got %v want %v", k, wantRTK, b)
					}
					if b := brute.ReverseKRanks(q, k, nil); !equalMatches(wantRKR, b) {
						t.Fatalf("reference RKR k=%d disagrees with brute: got %+v want %+v", k, wantRKR, b)
					}
					for _, workers := range []int{1, 2, 4, 8} {
						gotRTK := gir.ReverseTopKParallel(q, k, workers, nil)
						if !equalInts(gotRTK, wantRTK) {
							t.Fatalf("grouped RTK k=%d workers=%d: got %v want %v", k, workers, gotRTK, wantRTK)
						}
						gotRKR := gir.ReverseKRanksParallel(q, k, workers, nil)
						if !equalMatches(gotRKR, wantRKR) {
							t.Fatalf("grouped RKR k=%d workers=%d: got %+v want %+v", k, workers, gotRKR, wantRKR)
						}
					}
					for _, pgir := range packed {
						b := pgir.PackedBits()
						for _, workers := range []int{1, 2, 4, 8} {
							gotRTK, err := pgir.ReverseTopKOpts(ctx, q, k, QueryOpts{Workers: workers})
							if err != nil || !equalInts(gotRTK, wantRTK) {
								t.Fatalf("packed b=%d RTK k=%d workers=%d: got %v (err %v) want %v", b, k, workers, gotRTK, err, wantRTK)
							}
							gotRKR, err := pgir.ReverseKRanksOpts(ctx, q, k, QueryOpts{Workers: workers})
							if err != nil || !equalMatches(gotRKR, wantRKR) {
								t.Fatalf("packed b=%d RKR k=%d workers=%d: got %+v (err %v) want %+v", b, k, workers, gotRKR, err, wantRKR)
							}
						}
						// The Reference option must route the packed index
						// through the unpacked float64 path — identical
						// answers AND identical sequential counters, since
						// the packed loop mirrors the unpacked one's
						// bookkeeping exactly.
						var cu, cp, cr stats.Counters
						wantU := gir.ReverseTopKParallel(q, k, 1, &cu)
						gotP, _ := pgir.ReverseTopKOpts(ctx, q, k, QueryOpts{Workers: 1, Counters: &cp})
						gotR, _ := pgir.ReverseTopKOpts(ctx, q, k, QueryOpts{Workers: 1, Counters: &cr, Reference: true})
						if !equalInts(gotP, wantU) || !equalInts(gotR, wantU) {
							t.Fatalf("packed b=%d RTK k=%d: packed %v reference %v want %v", b, k, gotP, gotR, wantU)
						}
						if cp != cu || cr != cu {
							t.Fatalf("packed b=%d RTK k=%d: counters diverge\nunpacked:  %+v\npacked:    %+v\nreference: %+v", b, k, cu, cp, cr)
						}
					}
				}
			}
		})
	}
}

// TestGroupedStateReuse hammers one pooled GIR with interleaved query
// shapes so recycled state (Domin buffer, scratch tag, heap) crossing
// queries would be caught immediately against brute force.
func TestGroupedStateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	P := dataset.GenerateProducts(rng, dataset.Clustered, 120, 4, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Uniform, 80, 4)
	points := catalogSet(rng, P.Points[:30], 120)
	gir := NewGIR(points, W.Points, P.Range, 8)
	brute := NewBrute(points, W.Points)
	for iter := 0; iter < 60; iter++ {
		q := points[rng.Intn(len(points))]
		if iter%3 == 0 {
			q = make(vec.Vector, 4)
			for j := range q {
				q[j] = rng.Float64() * P.Range
			}
		}
		k := 1 + rng.Intn(12)
		if got, want := gir.ReverseKRanks(q, k, nil), brute.ReverseKRanks(q, k, nil); !equalMatches(got, want) {
			t.Fatalf("iter %d k=%d: pooled RKR diverged: got %+v want %+v", iter, k, got, want)
		}
		if got, want := gir.ReverseTopK(q, k, nil), brute.ReverseTopK(q, k, nil); !equalInts(got, want) {
			t.Fatalf("iter %d k=%d: pooled RTK diverged: got %v want %v", iter, k, got, want)
		}
	}
}

// TestGroupedCountersSane checks the grouped counter invariants on a
// duplicate-heavy dataset directly (the parallel cross-validation test
// checks them after worker merges).
func TestGroupedCountersSane(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	P := dataset.GenerateProducts(rng, dataset.Clustered, 200, 5, dataset.DefaultRange)
	W := dataset.GenerateWeights(rng, dataset.Clustered, 100, 5)
	points := catalogSet(rng, P.Points[:25], 200)
	gir := NewGIR(points, W.Points, P.Range, 16)
	q := points[7]
	var c stats.Counters
	gir.ReverseKRanks(q, 10, &c)
	checkStatsInvariants(t, &c)
	if c.ApproxVisited > int64(gir.PointGroups())*int64(gir.NumWeights()) {
		t.Fatalf("ApproxVisited %d exceeds groups×weights %d — counting per point, not per group?",
			c.ApproxVisited, gir.PointGroups()*gir.NumWeights())
	}
}
