//go:build linux || darwin

package gridrank

import (
	"encoding/binary"
	"fmt"
	"os"
	"syscall"

	"gridrank/internal/flight"
)

// LoadMmap opens a GRI3 index file by memory-mapping it read-only: the
// matrices, cell stores, groupings, packed rows and boundary table the
// queries scan are views straight into the mapping, so opening a
// multi-gigabyte catalog costs milliseconds and no copies, the OS pages
// data in on demand and evicts it under pressure, and processes serving
// the same file share one physical copy. Validation is structural (see
// gri3.go); corruption beyond the checksummed header is the trusted
// operator's problem, exactly like any other mmap-served database file.
//
// Mutations work normally — copy-on-write epochs allocate their deltas
// on the heap and leave the mapping untouched. Call Close when the
// index is no longer needed; Go's finalizers never unmap it. Version 1
// and 2 files have no mapped form and fall back to the heap loader.
func LoadMmap(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	if binary.LittleEndian.Uint32(magic[:]) != indexMagicV3 {
		return Load(path)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("gridrank: mmap %s: %v", path, err)
	}
	// Advisory only: start readahead now so first queries don't stall on
	// page faults. Serving still works (just colder) if the hint fails.
	_ = syscall.Madvise(data, syscall.MADV_WILLNEED)
	e, dim, err := parseGRI3Image(data, false)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	ix := &Index{dim: dim, format: formatGRI3, mapped: [][]byte{data}, fr: flight.New(0)}
	ix.cur.Store(e)
	return ix, nil
}

func munmap(b []byte) error { return syscall.Munmap(b) }
