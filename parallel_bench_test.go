package gridrank

// Benchmarks of the intra-query parallel GIR path on the large-single-
// query workload it was built for: one market-analysis style query over
// |W| = 50k preferences, d = 6 (the paper's default dimensionality).
// Speedup over workers=1 requires real cores; on a single-CPU machine
// the sub-benchmarks instead measure the coordination overhead. Run:
//
//	go test -bench 'BenchmarkGIRParallel|BenchmarkIndexConstruction' -benchtime 3x

import (
	"fmt"
	"testing"

	"gridrank/internal/algo"
	"gridrank/internal/grid"
)

func makeParallelBenchData(b *testing.B) (benchData, *algo.GIR) {
	b.Helper()
	data := makeBenchData(b, 5000, 50000, 6)
	return data, algo.NewGIR(data.P, data.W, DefaultRange, 32)
}

// BenchmarkGIRParallel sweeps the worker pool size for both query types;
// the acceptance workload of the parallel execution model.
func BenchmarkGIRParallel(b *testing.B) {
	data, gir := makeParallelBenchData(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("rkr/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gir.ReverseKRanksParallel(data.q, 10, workers, nil)
			}
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("rtk/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gir.ReverseTopKParallel(data.q, 100, workers, nil)
			}
		})
	}
}

// BenchmarkIndexConstructionParallel measures the cold-start cost the
// sharded row fill attacks: building P^(A) and W^(A) for the same
// 5k x 50k workload.
func BenchmarkIndexConstructionParallel(b *testing.B) {
	data := makeBenchData(b, 5000, 50000, 6)
	g := grid.New(32, DefaultRange, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				grid.NewPointIndexParallel(g, data.P, workers)
				grid.NewWeightIndexParallel(g, data.W, workers)
			}
		})
	}
}
