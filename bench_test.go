package gridrank

// One benchmark per table and figure of the paper's evaluation, each
// driving the corresponding internal/exp runner at a reduced scale
// (raise the scale through cmd/experiments for paper-sized runs), plus
// micro-benchmarks of the core query path. Run with:
//
//	go test -bench=. -benchmem
import (
	"testing"

	"gridrank/internal/algo"
	"gridrank/internal/exp"
	"gridrank/internal/stats"
)

// benchConfig keeps each experiment iteration around tens of milliseconds.
func benchConfig() exp.Config {
	return exp.Config{Seed: 9, SizeP: 600, SizeW: 300, Queries: 2, K: 20, N: 32, Capacity: 32}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkTable2(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkFigure8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFigure10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFigure13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFigure15a(b *testing.B) { benchExperiment(b, "fig15a") }
func BenchmarkFigure15b(b *testing.B) { benchExperiment(b, "fig15b") }
func BenchmarkModel(b *testing.B)     { benchExperiment(b, "model") }

// Micro-benchmarks: the head-to-head query costs the experiments
// aggregate, isolated per algorithm on a fixed 6-d uniform workload.

type benchData struct {
	P, W []Vector
	q    Vector
}

func makeBenchData(b *testing.B, nP, nW, d int) benchData {
	b.Helper()
	P, err := GenerateProducts(1, Uniform, nP, d)
	if err != nil {
		b.Fatal(err)
	}
	W, err := GeneratePreferences(2, Uniform, nW, d)
	if err != nil {
		b.Fatal(err)
	}
	return benchData{P: P, W: W, q: P[len(P)/2]}
}

func BenchmarkGIRReverseTopK(b *testing.B) {
	data := makeBenchData(b, 4000, 1000, 6)
	gir := algo.NewGIR(data.P, data.W, DefaultRange, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gir.ReverseTopK(data.q, 100, nil)
	}
}

func BenchmarkSIMReverseTopK(b *testing.B) {
	data := makeBenchData(b, 4000, 1000, 6)
	sim := algo.NewSIM(data.P, data.W)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ReverseTopK(data.q, 100, nil)
	}
}

func BenchmarkBBRReverseTopK(b *testing.B) {
	data := makeBenchData(b, 4000, 1000, 6)
	bbr := algo.NewBBR(data.P, data.W, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bbr.ReverseTopK(data.q, 100, nil)
	}
}

func BenchmarkGIRReverseKRanks(b *testing.B) {
	data := makeBenchData(b, 4000, 1000, 6)
	gir := algo.NewGIR(data.P, data.W, DefaultRange, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gir.ReverseKRanks(data.q, 100, nil)
	}
}

func BenchmarkSIMReverseKRanks(b *testing.B) {
	data := makeBenchData(b, 4000, 1000, 6)
	sim := algo.NewSIM(data.P, data.W)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ReverseKRanks(data.q, 100, nil)
	}
}

func BenchmarkMPAReverseKRanks(b *testing.B) {
	data := makeBenchData(b, 4000, 1000, 6)
	mpa, err := algo.NewMPA(data.P, data.W, 64, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpa.ReverseKRanks(data.q, 100, nil)
	}
}

// BenchmarkGIRHighDim isolates the paper's headline regime: d = 30, where
// the grid filter keeps the scan cheap while trees degenerate.
func BenchmarkGIRHighDim(b *testing.B) {
	data := makeBenchData(b, 2000, 500, 30)
	gir := algo.NewGIR(data.P, data.W, DefaultRange, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gir.ReverseKRanks(data.q, 50, nil)
	}
}

func BenchmarkIndexConstruction(b *testing.B) {
	data := makeBenchData(b, 4000, 1000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(data.P, data.W, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterRateReport reports the realized filter rate alongside
// time, so regressions in bound quality are visible in bench output.
func BenchmarkFilterRateReport(b *testing.B) {
	data := makeBenchData(b, 4000, 1000, 6)
	gir := algo.NewGIR(data.P, data.W, DefaultRange, 32)
	var c stats.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gir.ReverseKRanks(data.q, 100, &c)
	}
	b.ReportMetric(100*c.FilterRate(), "filter%")
	b.ReportMetric(float64(c.PairwiseMults)/float64(b.N), "mults/query")
}
