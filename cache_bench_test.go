package gridrank

import (
	"context"
	"math/rand"
	"testing"
)

// Answer-cache benchmarks on the acceptance workload (clustered catalog
// data, d=6, n=32): the warm-hit path against the uncached scan — the
// ISSUE's >= 10x headline — and the mutation/query contention benchmark
// with the cache enabled, reporting the achieved hit rate under
// continuous invalidation.

// cacheBenchIndex builds the acceptance-workload index, optionally with
// the answer cache attached.
func cacheBenchIndex(b *testing.B, cacheSize int) (*Index, Vector) {
	b.Helper()
	data := makeCatalogBenchData(b, 4000, 1000, 6, 16)
	opts := &Options{GridPartitions: 32}
	if cacheSize > 0 {
		opts.CacheSize = cacheSize
	}
	ix, err := New(data.P, data.W, opts)
	if err != nil {
		b.Fatal(err)
	}
	return ix, data.q
}

// BenchmarkGIRCacheWarmHitRTK measures the hit path: the answer is
// resident, so each iteration is one lookup and one copy.
func BenchmarkGIRCacheWarmHitRTK(b *testing.B) {
	ix, q := cacheBenchIndex(b, 128)
	ctx := context.Background()
	if _, err := ix.ReverseTopKCtx(ctx, q, 100); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.ReverseTopKCtx(ctx, q, 100); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cs, _ := ix.CacheStats()
	if cs.Hits < int64(b.N) {
		b.Fatalf("warm loop missed the cache: %+v", cs)
	}
}

// BenchmarkGIRCacheBypassRTK is the same query through the same index
// with the cache bypassed — the scan cost a hit saves.
func BenchmarkGIRCacheBypassRTK(b *testing.B) {
	ix, q := cacheBenchIndex(b, 128)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.ReverseTopKCtx(ctx, q, 100, WithoutCache()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGIRCacheWarmHitRKR measures the hit path for reverse
// k-ranks, whose stored answers carry (index, rank) pairs.
func BenchmarkGIRCacheWarmHitRKR(b *testing.B) {
	ix, q := cacheBenchIndex(b, 128)
	ctx := context.Background()
	if _, err := ix.ReverseKRanksCtx(ctx, q, 100); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.ReverseKRanksCtx(ctx, q, 100); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cs, _ := ix.CacheStats()
	if cs.Hits < int64(b.N) {
		b.Fatalf("warm loop missed the cache: %+v", cs)
	}
}

// BenchmarkGIRCacheBypassRKR is the uncached reverse k-ranks baseline.
func BenchmarkGIRCacheBypassRKR(b *testing.B) {
	ix, q := cacheBenchIndex(b, 128)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.ReverseKRanksCtx(ctx, q, 100, WithoutCache()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGIRMutationUnderQueryLoadCached is the cache-enabled variant
// of BenchmarkGIRMutationUnderQueryLoad: mutation latency now includes
// the invalidation sweep, the background querier draws from a pool of
// repeating queries, and the achieved hit rate is reported as hit_pct —
// the honest number for how often the cache survives a mutation storm.
func BenchmarkGIRMutationUnderQueryLoadCached(b *testing.B) {
	if testing.Short() {
		b.Skip("contention benchmark skipped in short mode")
	}
	ix := mutationBenchIndex(b, 20000, 5000)
	if err := ix.EnableCache(256, 0); err != nil {
		b.Fatal(err)
	}
	pool := ix.Products()[:4]
	ctx := context.Background()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ix.ReverseTopKCtx(ctx, pool[i%len(pool)], 10); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	rng := rand.New(rand.NewSource(76))
	p := make(Vector, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One mutation in sixteen is a low-corner row that affects every
		// cached query; the rest are top-of-range rows the dominance
		// sweep proves harmless. Real catalogs skew the same way — most
		// churn cannot touch a given query's answer — and the mix keeps
		// the reported hit rate honest: entries are repeatedly
		// invalidated and re-stored rather than resident forever.
		for j := range p {
			if i%16 == 0 {
				p[j] = rng.Float64() * 50
			} else {
				p[j] = 9990 + rng.Float64()*9
			}
		}
		id, err := ix.InsertProduct(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.DeleteProduct(id); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
	cs, _ := ix.CacheStats()
	if total := cs.Hits + cs.Misses; total > 0 {
		b.ReportMetric(100*float64(cs.Hits)/float64(total), "hit_%")
	}
}
