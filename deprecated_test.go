package gridrank

// Equivalence coverage for the deprecated query matrix: every wrapper
// must answer exactly like the ReverseTopKCtx / ReverseKRanksCtx calls
// it forwards to, and populate stats the same way. This file is the one
// place in the repo allowed to call the deprecated methods (see
// scripts/check_deprecated.sh).

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestDeprecatedWrappersMatchCtxAPI(t *testing.T) {
	ix, P := testIndexWithOpts(t, nil)
	bg := context.Background()
	for _, q := range []Vector{P[0], P[123], {1, 1, 1, 1, 1}} {
		const k = 10

		wantRTK, err := ix.ReverseTopKCtx(bg, q, k)
		if err != nil {
			t.Fatal(err)
		}
		var wantSt Stats
		wantRKR, err := ix.ReverseKRanksCtx(bg, q, k, WithStats(&wantSt))
		if err != nil {
			t.Fatal(err)
		}
		rtkStr := fmt.Sprintf("%v", wantRTK)
		rkrStr := fmt.Sprintf("%+v", wantRKR)

		if got, err := ix.ReverseTopK(q, k); err != nil || fmt.Sprintf("%v", got) != rtkStr {
			t.Errorf("ReverseTopK: %v, err %v", got, err)
		}
		if got, st, err := ix.ReverseTopKStats(q, k); err != nil || fmt.Sprintf("%v", got) != rtkStr {
			t.Errorf("ReverseTopKStats: %v, %+v, err %v", got, st, err)
		}
		if got, err := ix.ReverseTopKParallel(q, k, 3); err != nil || fmt.Sprintf("%v", got) != rtkStr {
			t.Errorf("ReverseTopKParallel: %v, err %v", got, err)
		}
		if got, st, err := ix.ReverseTopKParallelStats(q, k, 3); err != nil || fmt.Sprintf("%v", got) != rtkStr || st.BoundSums == 0 {
			t.Errorf("ReverseTopKParallelStats: %v, %+v, err %v", got, st, err)
		}

		if got, err := ix.ReverseKRanks(q, k); err != nil || fmt.Sprintf("%+v", got) != rkrStr {
			t.Errorf("ReverseKRanks: %+v, err %v", got, err)
		}
		if got, st, err := ix.ReverseKRanksStats(q, k); err != nil || fmt.Sprintf("%+v", got) != rkrStr || st != wantSt {
			t.Errorf("ReverseKRanksStats: %+v, stats %+v (want %+v), err %v", got, st, wantSt, err)
		}
		if got, err := ix.ReverseKRanksParallel(q, k, 3); err != nil || fmt.Sprintf("%+v", got) != rkrStr {
			t.Errorf("ReverseKRanksParallel: %+v, err %v", got, err)
		}
		if got, st, err := ix.ReverseKRanksParallelStats(q, k, 3); err != nil || fmt.Sprintf("%+v", got) != rkrStr || st.BoundSums == 0 {
			t.Errorf("ReverseKRanksParallelStats: %+v, %+v, err %v", got, st, err)
		}
	}
	// The wrappers pass validation errors through unchanged.
	if _, _, err := ix.ReverseTopKParallelStats(P[0], 5, -1); !errors.Is(err, ErrBadParallelism) {
		t.Errorf("negative workers: %v, want ErrBadParallelism", err)
	}
}
