package gridrank

// BenchmarkFlightRecorderOverhead prices the always-on flight recorder
// on the query path (tracked in BENCH_gir.json by scripts/bench.sh):
//
//   - off: Options.FlightCapacity = -1, the recorder fully disabled —
//     the pre-recorder baseline.
//   - on:  the default always-on recorder, every query writing one
//     fixed-size digest into the ring.
//
// The two must stay within noise of each other: recording is a
// timestamp, a cursor increment, one slot CAS pair and a struct copy —
// zero allocations (TestFlightZeroAllocOverhead pins that exactly).

import (
	"context"
	"testing"
)

func BenchmarkFlightRecorderOverhead(b *testing.B) {
	P, err := GenerateProducts(1, Uniform, 4000, 6)
	if err != nil {
		b.Fatal(err)
	}
	W, err := GeneratePreferences(2, Uniform, 1000, 6)
	if err != nil {
		b.Fatal(err)
	}
	q := P[len(P)/2]
	ctx := context.Background()

	run := func(b *testing.B, opts *Options) {
		ix, err := New(P, W, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.ReverseTopKCtx(ctx, q, 100); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, &Options{FlightCapacity: -1}) })
	b.Run("on", func(b *testing.B) { run(b, nil) })
}
