package gridrank

// Coverage for the layout-aware build surface: Options.PackedBits
// validation, the Layout accessor, public-level packed-vs-unpacked
// answer equivalence (the algo-level sweep lives in
// internal/algo/gir_reference_test.go), WithLayoutReference, layout
// preservation across mutations, and the version-2 persistence format
// (packed sections, v1 back-compat, corruption rejection).

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"gridrank/internal/dataset"
)

func TestPackedBitsValidation(t *testing.T) {
	P, err := GenerateProducts(61, Uniform, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(62, Uniform, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 1, 3, 9, 64} {
		if _, err := New(P, W, &Options{PackedBits: bad}); !errors.Is(err, ErrBadPackedBits) {
			t.Errorf("PackedBits=%d: err = %v, want ErrBadPackedBits", bad, err)
		}
	}
	// 4 bits cover only 16 cells; the default grid has 32 partitions.
	if _, err := New(P, W, &Options{PackedBits: 4}); !errors.Is(err, ErrBadPackedBits) {
		t.Errorf("PackedBits=4 on default 32-cell grid: err = %v, want ErrBadPackedBits", err)
	}
	if _, err := New(P, W, &Options{PackedBits: 4, GridPartitions: 16}); err != nil {
		t.Errorf("PackedBits=4 on a 16-cell grid rejected: %v", err)
	}

	ix, err := New(P, W, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lay := ix.Layout(); lay.Packed || lay.BitsPerDim != 0 || lay.RowBlock != 1 {
		t.Errorf("default layout = %+v, want unpacked", lay)
	}
	pix, err := New(P, W, &Options{PackedBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	if lay := pix.Layout(); !lay.Packed || lay.BitsPerDim != 5 || lay.RowBlock < 2 {
		t.Errorf("packed layout = %+v, want {Packed:true BitsPerDim:5 RowBlock>=2}", lay)
	}
}

// TestPackedIndexMatchesUnpacked is the public-API face of the packed
// equivalence gate: a packed index, the same index queried through
// WithLayoutReference, and an unpacked index over the same data must
// serialize identical answers at every worker count.
func TestPackedIndexMatchesUnpacked(t *testing.T) {
	ref, P := testIndexWithOpts(t, nil)
	packed, _ := testIndexWithOpts(t, &Options{PackedBits: 6})
	bg := context.Background()
	for _, q := range []Vector{P[0], P[211], {1, 1, 1, 1, 1}} {
		for _, k := range []int{1, 10, 120} {
			wantRTK, err := ref.ReverseTopKCtx(bg, q, k, WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			wantRKR, err := ref.ReverseKRanksCtx(bg, q, k, WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			wantR, wantK := fmt.Sprintf("%v", wantRTK), fmt.Sprintf("%+v", wantRKR)
			for _, workers := range []int{1, 3, 8} {
				gotRTK, err := packed.ReverseTopKCtx(bg, q, k, WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				gotRKR, err := packed.ReverseKRanksCtx(bg, q, k, WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprintf("%v", gotRTK) != wantR || fmt.Sprintf("%+v", gotRKR) != wantK {
					t.Fatalf("packed workers=%d k=%d: answers differ from unpacked", workers, k)
				}
				refRTK, err := packed.ReverseTopKCtx(bg, q, k, WithWorkers(workers), WithLayoutReference())
				if err != nil {
					t.Fatal(err)
				}
				refRKR, err := packed.ReverseKRanksCtx(bg, q, k, WithWorkers(workers), WithLayoutReference())
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprintf("%v", refRTK) != wantR || fmt.Sprintf("%+v", refRKR) != wantK {
					t.Fatalf("WithLayoutReference workers=%d k=%d: answers differ", workers, k)
				}
			}
		}
	}
	// The option is a no-op on an unpacked index.
	plain, err := ref.ReverseTopKCtx(bg, P[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ref.ReverseTopKCtx(bg, P[0], 5, WithLayoutReference())
	if err != nil || fmt.Sprintf("%v", got) != fmt.Sprintf("%v", plain) {
		t.Fatalf("WithLayoutReference on unpacked index: %v (want %v), err %v", got, plain, err)
	}
}

// TestMutationsPreserveLayout pins the rebuild policy: every mutation
// path — incremental derivation, single-element rebuild, batch rebuild
// — carries the packed layout into the next epoch, and the mutated
// index keeps answering identically to a fresh packed build.
func TestMutationsPreserveLayout(t *testing.T) {
	ix, P := testIndexWithOpts(t, &Options{PackedBits: 5})
	if _, err := ix.InsertProduct(Vector{0.5, 0.4, 0.3, 0.2, 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.DeleteProduct(0); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.InsertPreference(Vector{0.2, 0.2, 0.2, 0.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.InsertProducts([]Vector{{1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := ix.DeletePreferences([]int{3, 7}); err != nil {
		t.Fatal(err)
	}
	if lay := ix.Layout(); !lay.Packed || lay.BitsPerDim != 5 {
		t.Fatalf("layout after mutations = %+v, want packed 5-bit", lay)
	}
	fresh, err := New(ix.Products(), ix.Preferences(), &Options{PackedBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := P[50]
	want, err := fresh.ReverseKRanksCtx(context.Background(), q, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.ReverseKRanksCtx(context.Background(), q, 9)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("mutated packed index answers %+v, fresh build %+v", got, want)
	}
}

// TestMutationWrappersMatchCtxAPI mirrors the deprecated-query
// equivalence harness for the mutation surface: every context-free
// mutator is a thin wrapper over its Ctx form, so driving two copies of
// the same index through both forms must leave byte-identical indexes.
func TestMutationWrappersMatchCtxAPI(t *testing.T) {
	a, _ := testIndexWithOpts(t, &Options{PackedBits: 5})
	b, _ := testIndexWithOpts(t, &Options{PackedBits: 5})
	bg := context.Background()

	step := func(name string, plain, ctx error) {
		t.Helper()
		if plain != nil || ctx != nil {
			t.Fatalf("%s: plain err %v, ctx err %v", name, plain, ctx)
		}
	}
	p := Vector{0.9, 0.8, 0.7, 0.6, 0.5}
	w := Vector{0.1, 0.2, 0.3, 0.2, 0.2}
	_, errA := a.InsertProduct(p)
	_, errB := b.InsertProductCtx(bg, p)
	step("InsertProduct", errA, errB)
	step("DeleteProduct", a.DeleteProduct(2), b.DeleteProductCtx(bg, 2))
	_, errA = a.InsertPreference(w)
	_, errB = b.InsertPreferenceCtx(bg, w)
	step("InsertPreference", errA, errB)
	step("DeletePreference", a.DeletePreference(5), b.DeletePreferenceCtx(bg, 5))
	_, errA = a.InsertProducts([]Vector{p, p})
	_, errB = b.InsertProductsCtx(bg, []Vector{p, p})
	step("InsertProducts", errA, errB)
	step("DeleteProducts", a.DeleteProducts([]int{1, 3}), b.DeleteProductsCtx(bg, []int{1, 3}))
	_, errA = a.InsertPreferences([]Vector{w})
	_, errB = b.InsertPreferencesCtx(bg, []Vector{w})
	step("InsertPreferences", errA, errB)
	step("DeletePreferences", a.DeletePreferences([]int{0}), b.DeletePreferencesCtx(bg, []int{0}))

	var bufA, bufB bytes.Buffer
	if _, err := a.WriteTo(&bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("plain and Ctx mutation sequences serialized different indexes")
	}
	// A cancelled context aborts before any epoch is built.
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	epoch := b.Epoch()
	if _, err := b.InsertProductCtx(cancelled, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled InsertProductCtx: %v", err)
	}
	if b.Epoch() != epoch {
		t.Fatal("cancelled mutation advanced the epoch")
	}
}

// TestIndexPackedRoundTrip proves the version-2 format persists the
// layout: a packed index survives WriteTo/ReadIndex with its layout and
// answers intact, and the stored packed section is verified on load.
func TestIndexPackedRoundTrip(t *testing.T) {
	ix, P := testIndexWithOpts(t, &Options{PackedBits: 6})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lay := got.Layout(); !lay.Packed || lay.BitsPerDim != 6 {
		t.Fatalf("loaded layout = %+v, want packed 6-bit", lay)
	}
	q := P[7]
	want, err := ix.ReverseKRanksCtx(context.Background(), q, 8)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.ReverseKRanksCtx(context.Background(), q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", have) != fmt.Sprintf("%+v", want) {
		t.Fatalf("loaded packed index answers differ: %+v vs %+v", have, want)
	}

	// Corrupting any single byte of the packed section must be caught:
	// either the section's own framing rejects it, or the byte-for-byte
	// comparison against the rebuilt cells does.
	unpackedLen := func() int {
		u, _ := testIndexWithOpts(t, nil)
		var ub bytes.Buffer
		if _, err := u.WriteTo(&ub); err != nil {
			t.Fatal(err)
		}
		return ub.Len()
	}()
	if len(raw) <= unpackedLen {
		t.Fatalf("packed stream (%d bytes) not longer than unpacked (%d): no section written?", len(raw), unpackedLen)
	}
	for _, off := range []int{unpackedLen, unpackedLen + 9, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if _, err := ReadIndex(bytes.NewReader(bad)); !errors.Is(err, ErrBadIndexFile) {
			t.Errorf("flipped packed byte at %d: err = %v, want ErrBadIndexFile", off, err)
		}
	}
	// Truncating the packed section away is equally fatal.
	if _, err := ReadIndex(bytes.NewReader(raw[:unpackedLen])); !errors.Is(err, ErrBadIndexFile) {
		t.Errorf("missing packed section: err = %v, want ErrBadIndexFile", err)
	}
}

// TestIndexLoadsV1Format pins backward compatibility: a version-1 file
// (no layout field, no packed section) still loads — as an unpacked
// index — and re-saves in the current format, byte-identical to the
// fresh index's own serialization. The v1 stream is hand-constructed
// the way the original writer produced it: magic+n+rangeP, then the two
// data set blocks.
func TestIndexLoadsV1Format(t *testing.T) {
	ix, P := testIndexWithOpts(t, nil)
	var v1 bytes.Buffer
	hdr := make([]byte, 4+4+8)
	binary.LittleEndian.PutUint32(hdr[0:], indexMagicV1)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ix.GridPartitions()))
	rangeP := computeRangeP(ix.Products())
	binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(rangeP))
	v1.Write(hdr)
	if err := dataset.WriteBinary(&v1, &dataset.Dataset{Dim: ix.Dim(), Range: rangeP, Points: ix.Products()}); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteBinary(&v1, &dataset.Dataset{Dim: ix.Dim(), Range: 1, Points: ix.Preferences()}); err != nil {
		t.Fatal(err)
	}

	got, err := ReadIndex(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if lay := got.Layout(); lay.Packed {
		t.Fatalf("v1 file loaded packed: %+v", lay)
	}
	if got.Format() != "GRI1" || ix.Format() != "GRI3" {
		t.Fatalf("formats: loaded %q (want GRI1), fresh %q (want GRI3)", got.Format(), ix.Format())
	}
	if got.NumProducts() != ix.NumProducts() || got.GridPartitions() != ix.GridPartitions() {
		t.Fatal("v1 load lost metadata")
	}
	q := P[3]
	want, err := ix.ReverseKRanksCtx(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.ReverseKRanksCtx(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", have) != fmt.Sprintf("%+v", want) {
		t.Fatalf("v1-loaded index answers differ: %+v vs %+v", have, want)
	}
	// Re-saving migrates to the current format, byte-identical to the
	// fresh index's own serialization.
	var fresh, resaved bytes.Buffer
	if _, err := ix.WriteTo(&fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := got.WriteTo(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), fresh.Bytes()) {
		t.Fatal("re-saved v1 index is not byte-identical to the fresh GRI3 stream")
	}
}
