//go:build !race

package gridrank

// raceEnabled mirrors internal/algo's pattern: allocation-count tests
// are skipped under the race detector, whose instrumentation allocates
// where the production build does not.
const raceEnabled = false
