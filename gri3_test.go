package gridrank

// GRI3 persistence tests: the heap/mmap equivalence harness the
// acceptance criteria call for, the durability and allocation
// regression tests, format migration, and structure-aware corruption
// rejection (complementing FuzzReadIndex's blind mutations).

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"gridrank/internal/dataset"
)

// canMmap reports whether LoadMmap actually maps on this platform (the
// stub falls back to the heap loader).
func canMmap() bool { return runtime.GOOS == "linux" || runtime.GOOS == "darwin" }

// gri3Index builds a small index at the given packed width, saved and
// reloaded by most tests in this file.
func gri3Index(t testing.TB, packedBits int) *Index {
	t.Helper()
	P, err := GenerateProducts(31, Clustered, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	W, err := GeneratePreferences(32, Uniform, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(P, W, &Options{GridPartitions: 16, PackedBits: packedBits})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestHeapMmapEquivalence is the extended persistence harness of the
// acceptance criteria: for every packed width, the heap-loaded and
// mmap-loaded views of one saved file must answer byte-identically to
// each other and to the index that wrote the file, at every worker
// count. It runs under -race in CI (root package race pass).
func TestHeapMmapEquivalence(t *testing.T) {
	for _, width := range []int{0, 4, 6, 8} {
		t.Run(fmt.Sprintf("bits=%d", width), func(t *testing.T) {
			ix := gri3Index(t, width)
			path := filepath.Join(t.TempDir(), "ix.gri3")
			if err := ix.Save(path); err != nil {
				t.Fatal(err)
			}
			heap, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			mm, err := LoadMmap(path)
			if err != nil {
				t.Fatal(err)
			}
			defer mm.Close()
			if heap.Format() != "GRI3" || mm.Format() != "GRI3" {
				t.Fatalf("formats %q/%q, want GRI3", heap.Format(), mm.Format())
			}
			if heap.Resident() != "heap" {
				t.Fatalf("heap load resident %q", heap.Resident())
			}
			if canMmap() && mm.Resident() != "mmap" {
				t.Fatalf("mmap load resident %q", mm.Resident())
			}
			if lay := mm.Layout(); lay.BitsPerDim != width {
				t.Fatalf("mmap layout %+v, want %d-bit", lay, width)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				for _, qi := range []int{0, 123, 299} {
					q := ix.Products()[qi]
					wantKR, err := ix.ReverseKRanksCtx(context.Background(), q, 9, WithWorkers(workers))
					if err != nil {
						t.Fatal(err)
					}
					wantTK, err := ix.ReverseTopKCtx(context.Background(), q, 9, WithWorkers(workers))
					if err != nil {
						t.Fatal(err)
					}
					for name, l := range map[string]*Index{"heap": heap, "mmap": mm} {
						gotKR, err := l.ReverseKRanksCtx(context.Background(), q, 9, WithWorkers(workers))
						if err != nil {
							t.Fatal(err)
						}
						gotTK, err := l.ReverseTopKCtx(context.Background(), q, 9, WithWorkers(workers))
						if err != nil {
							t.Fatal(err)
						}
						if fmt.Sprintf("%+v/%+v", gotKR, gotTK) != fmt.Sprintf("%+v/%+v", wantKR, wantTK) {
							t.Fatalf("width %d, workers %d, q %d, %s: answers diverge",
								width, workers, qi, name)
						}
					}
				}
			}
		})
	}
}

// TestMmapIndexMutatesAndCheckpoints: copy-on-write epochs layer over a
// mapped snapshot exactly as over a heap one — same answers, same
// re-serialization — and Checkpoint republishes the index from the
// newly written file without disturbing the epoch counter.
func TestMmapIndexMutatesAndCheckpoints(t *testing.T) {
	ix := gri3Index(t, 6)
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.gri3")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	mm, err := LoadMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	heap, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(x *Index) {
		if _, err := x.InsertProduct(Vector{0.5, 0.25, 0.75, 0.1}); err != nil {
			t.Fatal(err)
		}
		if err := x.DeleteProduct(7); err != nil {
			t.Fatal(err)
		}
		if _, err := x.InsertPreference(Vector{0.4, 0.3, 0.2, 0.1}); err != nil {
			t.Fatal(err)
		}
		if err := x.DeletePreference(3); err != nil {
			t.Fatal(err)
		}
	}
	mutate(mm)
	mutate(heap)
	var a, b bytes.Buffer
	if _, err := mm.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := heap.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("mutated mmap index serializes differently from its heap twin")
	}

	q := mm.Products()[11]
	want, err := mm.ReverseKRanksCtx(context.Background(), q, 6)
	if err != nil {
		t.Fatal(err)
	}
	seq := mm.Epoch()
	ckpt := filepath.Join(dir, "ckpt.gri3")
	if err := mm.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	if mm.Epoch() != seq {
		t.Fatalf("Checkpoint moved the epoch %d → %d", seq, mm.Epoch())
	}
	if canMmap() && mm.Resident() != "mmap" {
		t.Fatalf("post-checkpoint resident %q", mm.Resident())
	}
	got, err := mm.ReverseKRanksCtx(context.Background(), q, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("Checkpoint changed answers: %+v vs %+v", got, want)
	}
	// The checkpoint file is a complete, loadable index.
	re, err := Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumProducts() != mm.NumProducts() || re.NumPreferences() != mm.NumPreferences() {
		t.Fatal("checkpoint file lost elements")
	}
}

// TestSaveSyncsDirectory pins the durability half of the atomic save
// (alongside TestSaveIsAtomic, which pins atomicity): after the rename,
// Save fsyncs the containing directory, and a failing directory sync
// surfaces as the call's error.
func TestSaveSyncsDirectory(t *testing.T) {
	ix := persistIndex(t)
	dir := t.TempDir()
	orig := fsyncDir
	defer func() { fsyncDir = orig }()
	var synced []string
	fsyncDir = func(d string) error {
		synced = append(synced, d)
		return orig(d)
	}
	if err := ix.Save(filepath.Join(dir, "ix.gri3")); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("directory syncs = %v, want exactly [%s]", synced, dir)
	}
	boom := errors.New("sync failed")
	fsyncDir = func(string) error { return boom }
	if err := ix.Save(filepath.Join(dir, "ix.gri3")); !errors.Is(err, boom) {
		t.Fatalf("Save swallowed the directory sync failure: %v", err)
	}
}

// TestLoadAllocationCounts pins the O(1)-allocations load paths: the
// heap loader reads the image into one aligned buffer (no per-row
// allocations — the former double-copy through dataset.ReadBinary paid
// one allocation per row), and the mmap loader allocates only views.
// Allocation counts must not scale with the element count.
func TestLoadAllocationCounts(t *testing.T) {
	saved := func(nP int) string {
		t.Helper()
		P, err := GenerateProducts(41, Clustered, nP, 4)
		if err != nil {
			t.Fatal(err)
		}
		W, err := GeneratePreferences(42, Uniform, 64, 4)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := New(P, W, &Options{GridPartitions: 16})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), fmt.Sprintf("ix-%d.gri3", nP))
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	small, big := saved(512), saved(4096)
	for name, open := range map[string]func(string) (*Index, error){"Load": Load, "LoadMmap": LoadMmap} {
		measure := func(path string) float64 {
			return testing.AllocsPerRun(10, func() {
				ix, err := open(path)
				if err != nil {
					t.Fatal(err)
				}
				ix.Close()
			})
		}
		at1, at8 := measure(small), measure(big)
		// 8× the rows must not mean more allocations; allow a little
		// noise, nothing near the +3584 a per-row scheme would add.
		if at8 > at1+32 {
			t.Errorf("%s allocations scale with rows: %.0f at 512 rows, %.0f at 4096", name, at1, at8)
		}
	}
}

// TestMigrationGRI2 hand-constructs a version-2 packed stream the way
// the original writer produced it, loads it through the heap path, and
// proves the re-save is byte-identical to a fresh build's GRI3 — the
// v2 half of the migration matrix (layout_test.go covers v1).
func TestMigrationGRI2(t *testing.T) {
	ix := gri3Index(t, 6)
	e := ix.snap()
	var v2 bytes.Buffer
	hdr := make([]byte, 4+4+4+8)
	binary.LittleEndian.PutUint32(hdr[0:], indexMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ix.GridPartitions()))
	binary.LittleEndian.PutUint32(hdr[8:], 6)
	binary.LittleEndian.PutUint64(hdr[12:], math.Float64bits(e.rangeP))
	v2.Write(hdr)
	if err := dataset.WriteBinary(&v2, &dataset.Dataset{Dim: ix.Dim(), Range: e.rangeP, Points: ix.Products()}); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteBinary(&v2, &dataset.Dataset{Dim: ix.Dim(), Range: 1, Points: ix.Preferences()}); err != nil {
		t.Fatal(err)
	}
	if err := e.gir.PointCells().PackRows(6).Write(&v2); err != nil {
		t.Fatal(err)
	}

	got, err := ReadIndex(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("v2 file rejected: %v", err)
	}
	if got.Format() != "GRI2" {
		t.Fatalf("format %q, want GRI2", got.Format())
	}
	if lay := got.Layout(); !lay.Packed || lay.BitsPerDim != 6 {
		t.Fatalf("v2 layout lost: %+v", lay)
	}
	var fresh, resaved bytes.Buffer
	if _, err := ix.WriteTo(&fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := got.WriteTo(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), fresh.Bytes()) {
		t.Fatal("re-saved v2 index is not byte-identical to the fresh GRI3 stream")
	}
}

// TestGRI3RejectsCorruption drives structure-aware corruptions through
// the untrusted (heap) reader: every byte of a GRI3 file is covered by
// the header CRC, a section CRC, or the zero-padding rule, and layout
// lies are pinned by the canonical-offset equality — re-signing the
// header CRC must not let them through.
func TestGRI3RejectsCorruption(t *testing.T) {
	ix := gri3Index(t, 6)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	h, err := parseGRI3Header(valid[:gri3HeaderLen])
	if err != nil {
		t.Fatal(err)
	}
	secs, _ := h.layout()
	resign := func(b []byte) []byte {
		crc := crc64.New(gri3CRC)
		crc.Write(b[:80])
		crc.Write(b[gri3HeaderLen : gri3HeaderLen+gri3EntryLen*h.sections])
		binary.LittleEndian.PutUint64(b[80:], crc.Sum64())
		return b
	}
	clone := func() []byte { return append([]byte(nil), valid...) }
	cases := map[string][]byte{
		"flipped header byte": func() []byte { b := clone(); b[25] ^= 0x10; return b }(),
		"flipped table byte":  func() []byte { b := clone(); b[gri3HeaderLen+9] ^= 0x10; return b }(),
		"moved section (resigned)": func() []byte {
			b := clone()
			off := binary.LittleEndian.Uint64(b[gri3HeaderLen+8:])
			binary.LittleEndian.PutUint64(b[gri3HeaderLen+8:], off+gri3Align)
			return resign(b)
		}(),
		"shrunk section (resigned)": func() []byte {
			b := clone()
			l := binary.LittleEndian.Uint64(b[gri3HeaderLen+16:])
			binary.LittleEndian.PutUint64(b[gri3HeaderLen+16:], l-8)
			return resign(b)
		}(),
		"swapped section id (resigned)": func() []byte {
			b := clone()
			binary.LittleEndian.PutUint32(b[gri3HeaderLen:], 2)
			return resign(b)
		}(),
		"file size lie (resigned)": func() []byte {
			b := clone()
			binary.LittleEndian.PutUint64(b[72:], h.fileSize+gri3Align)
			return resign(b)
		}(),
		"flipped payload byte": func() []byte {
			b := clone()
			b[secs[secPGMembers-1].offset+2] ^= 0x01
			return b
		}(),
		"nonzero padding": func() []byte {
			b := clone()
			b[secs[0].offset-1] = 0xAA
			return b
		}(),
		"truncated to table": clone()[:gri3HeaderLen+gri3EntryLen*h.sections],
		"truncated section":  clone()[:len(valid)-100],
	}
	for name, data := range cases {
		if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrBadIndexFile) {
			t.Errorf("%s: err = %v, want ErrBadIndexFile", name, err)
		}
	}

	// A stat-backed Load additionally pins the total file length.
	path := filepath.Join(t.TempDir(), "trailing.gri3")
	if err := os.WriteFile(path, append(clone(), 0), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrBadIndexFile) {
		t.Errorf("trailing garbage after image: Load err = %v, want ErrBadIndexFile", err)
	}

	// The validation split: a payload corruption that breaks no shape
	// invariant is caught by the untrusted reader's section CRCs but
	// deliberately trusted by the mmap reader (which stops at the header
	// CRC and structural checks) — while header corruption stops both.
	if canMmap() {
		flipped := clone()
		flipped[secs[secProducts-1].offset] ^= 0x01 // mantissa bit of one float
		pv := filepath.Join(t.TempDir(), "payload.gri3")
		if err := os.WriteFile(pv, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(pv); !errors.Is(err, ErrBadIndexFile) {
			t.Errorf("payload flip: heap Load err = %v, want ErrBadIndexFile", err)
		}
		mm, err := LoadMmap(pv)
		if err != nil {
			t.Errorf("payload flip: structural mmap load rejected it: %v", err)
		} else {
			mm.Close()
		}
		hv := filepath.Join(t.TempDir(), "header.gri3")
		bad := clone()
		bad[30] ^= 0x01
		if err := os.WriteFile(hv, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadMmap(hv); !errors.Is(err, ErrBadIndexFile) {
			t.Errorf("header flip: mmap load err = %v, want ErrBadIndexFile", err)
		}
	}
}
