package gridrank

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"gridrank/internal/algo"
	"gridrank/internal/bits"
	"gridrank/internal/dataset"
	"gridrank/internal/vec"
)

// Index file layout, version 2 (little endian):
//
//	magic       uint32  'G''R''I''2'
//	n           uint32  grid partitions
//	packedBits  uint32  scan layout: 0 = float64 rows, 4..8 = packed width
//	rangeP      float64
//	products     dataset binary block
//	preferences  dataset binary block
//	packed P^(A) rows (bits.PackedRows block)   — only when packedBits > 0
//
// The approximate vectors and boundary tables are cheap to rebuild
// (O(|P|·d) cell assignments plus an (n+1)² table), so the file stores the
// authoritative data and reconstruction happens on load; this keeps the
// format immune to grid layout changes. A packed index additionally
// stores its element-wise packed cell rows: on load they are verified
// byte-for-byte against the rebuilt cells, turning any corruption of
// the data sections that survives their own framing checks into a
// loud ErrBadIndexFile instead of silently wrong answers. The section
// is element-wise, not group-wise, because group numbering depends on
// mutation history while element order does not (see below).
//
// Version 1 files (magic 'G''R''I''1') lack the packedBits field and
// the packed section; they load as unpacked indexes and re-save in the
// version-2 format.
//
// A mutated index persists exactly like a fresh build over the same data:
// the mutation paths maintain rangeP with New's derivation (see
// computeRangeP), so Save after any insert/delete sequence produces a
// file byte-identical to Save of New(current data) with the same layout.

const (
	indexMagicV1 = 0x31495247 // "GRI1"
	indexMagic   = 0x32495247 // "GRI2"
)

// ErrBadIndexFile reports a corrupt or foreign index file.
var ErrBadIndexFile = errors.New("gridrank: bad index file")

// countingWriter tracks every byte reaching the underlying writer, so
// WriteTo can honor the io.WriterTo contract (return the full count, not
// just the last unbuffered write) while still buffering the stream.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the index (data sets plus construction parameters).
// It serializes one epoch snapshot: concurrent mutations never tear the
// written file. The returned count is the total number of bytes written
// to w, per the io.WriterTo contract.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	e := ix.snap()
	packedBits := e.gir.PackedBits()
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	hdr := make([]byte, 4+4+4+8)
	binary.LittleEndian.PutUint32(hdr[0:], indexMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(e.gir.Grid().N()))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(packedBits))
	binary.LittleEndian.PutUint64(hdr[12:], math.Float64bits(e.rangeP))
	if _, err := bw.Write(hdr); err != nil {
		return cw.n, err
	}
	pset := &dataset.Dataset{Dim: ix.dim, Range: e.rangeP, Points: e.pm.Rows()}
	if err := dataset.WriteBinary(bw, pset); err != nil {
		return cw.n, err
	}
	wset := &dataset.Dataset{Dim: ix.dim, Range: 1, Points: e.wm.Rows()}
	if err := dataset.WriteBinary(bw, wset); err != nil {
		return cw.n, err
	}
	if packedBits > 0 {
		if err := e.gir.PointCells().PackRows(packedBits).Write(bw); err != nil {
			return cw.n, err
		}
	}
	err := bw.Flush()
	return cw.n, err
}

// ReadIndex deserializes an index written by WriteTo, rebuilding the
// Grid-index and approximate vectors.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	packedBits := 0
	var rangeP float64
	switch magic {
	case indexMagicV1:
		// Version 1: no layout field, no packed section. Loads unpacked;
		// the next Save writes version 2.
		var raw [8]byte
		if _, err := io.ReadFull(br, raw[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
		}
		rangeP = math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
	case indexMagic:
		var raw [12]byte
		if _, err := io.ReadFull(br, raw[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
		}
		packedBits = int(binary.LittleEndian.Uint32(raw[0:]))
		rangeP = math.Float64frombits(binary.LittleEndian.Uint64(raw[4:]))
		if packedBits != 0 && (packedBits < algo.MinPackedBits || packedBits > algo.MaxPackedBits) {
			return nil, fmt.Errorf("%w: implausible packed width %d", ErrBadIndexFile, packedBits)
		}
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadIndexFile)
	}
	if n < 1 || n > 256 {
		return nil, fmt.Errorf("%w: implausible partition count %d", ErrBadIndexFile, n)
	}
	if packedBits != 0 && 1<<packedBits < n {
		return nil, fmt.Errorf("%w: packed width %d cannot encode %d partitions", ErrBadIndexFile, packedBits, n)
	}
	if rangeP <= 0 || math.IsNaN(rangeP) || math.IsInf(rangeP, 0) {
		return nil, fmt.Errorf("%w: implausible range %v", ErrBadIndexFile, rangeP)
	}
	pset, err := dataset.ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("%w: products: %v", ErrBadIndexFile, err)
	}
	wset, err := dataset.ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("%w: preferences: %v", ErrBadIndexFile, err)
	}
	if pset.Dim != wset.Dim {
		return nil, fmt.Errorf("%w: dimension mismatch %d vs %d", ErrBadIndexFile, pset.Dim, wset.Dim)
	}
	// An index is never built over an empty side (New rejects it, and
	// mutations refuse to delete the last element), so an empty data set
	// here is corruption, not a degenerate-but-valid file.
	if pset.Len() == 0 || wset.Len() == 0 {
		return nil, fmt.Errorf("%w: empty data set", ErrBadIndexFile)
	}
	if err := pset.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	if err := wset.ValidateWeights(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	// Same contiguous layout as New: one backing array per set, shared by
	// the index views and the algorithm.
	pm := vec.NewMatrix(pset.Points)
	wm := vec.NewMatrix(wset.Points)
	gir := algo.NewGIRFromMatricesLayout(pm, wm, rangeP, n, algo.Layout{PackedBits: packedBits})
	if packedBits > 0 {
		// The stored packed section must match the cells rebuilt from the
		// data sections exactly: a mismatch means some section was
		// corrupted in a way its own framing checks missed.
		stored, err := bits.ReadRows(br)
		if err != nil {
			return nil, fmt.Errorf("%w: packed rows: %v", ErrBadIndexFile, err)
		}
		if stored.BitsPerDim() != packedBits {
			return nil, fmt.Errorf("%w: packed section width %d, header says %d",
				ErrBadIndexFile, stored.BitsPerDim(), packedBits)
		}
		if !stored.Equal(gir.PointCells().PackRows(packedBits)) {
			return nil, fmt.Errorf("%w: packed rows disagree with rebuilt cells", ErrBadIndexFile)
		}
	}
	ix := &Index{dim: pset.Dim}
	ix.cur.Store(&epoch{
		pm:     pm,
		wm:     wm,
		rangeP: rangeP,
		gir:    gir,
	})
	return ix, nil
}

// Save writes the index to the named file, atomically: the bytes go to a
// temporary file in the same directory, are fsynced, and the temporary
// file is renamed over path only once it is complete. A crash, full
// disk, or write error part-way through never leaves path truncated or
// torn — an existing good index stays intact.
func (ix *Index) Save(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if _, err := ix.WriteTo(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	// CreateTemp opens 0600; match the permissions os.Create would have
	// given a directly written file.
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads an index from the named file.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}

// Products returns the indexed product vectors of the current epoch. The
// slice is the index's own storage; callers must not modify it.
func (ix *Index) Products() []Vector { return ix.snap().pm.Rows() }

// Preferences returns the indexed preference vectors of the current
// epoch (not to be modified).
func (ix *Index) Preferences() []Vector { return ix.snap().wm.Rows() }

// Product returns a copy of product i.
func (ix *Index) Product(i int) (Vector, error) {
	pm := ix.snap().pm
	if i < 0 || i >= pm.Len() {
		return nil, fmt.Errorf("gridrank: product index %d out of range [0, %d)", i, pm.Len())
	}
	return vec.Clone(pm.Row(i)), nil
}
