package gridrank

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"gridrank/internal/algo"
	"gridrank/internal/dataset"
	"gridrank/internal/vec"
)

// Index file layout (little endian):
//
//	magic    uint32  'G''R''I''1'
//	n        uint32  grid partitions
//	rangeP   float64
//	products     dataset binary block
//	preferences  dataset binary block
//
// The approximate vectors and boundary tables are cheap to rebuild
// (O(|P|·d) cell assignments plus an (n+1)² table), so the file stores the
// authoritative data and reconstruction happens on load; this keeps the
// format immune to grid layout changes.

const indexMagic = 0x31495247 // "GRI1"

// ErrBadIndexFile reports a corrupt or foreign index file.
var ErrBadIndexFile = errors.New("gridrank: bad index file")

// WriteTo serializes the index (data sets plus construction parameters).
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	hdr := make([]byte, 4+4+8)
	binary.LittleEndian.PutUint32(hdr[0:], indexMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ix.GridPartitions()))
	binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(ix.rangeP))
	nw, err := bw.Write(hdr)
	written += int64(nw)
	if err != nil {
		return written, err
	}
	pset := &dataset.Dataset{Dim: ix.dim, Range: ix.rangeP, Points: ix.products}
	if err := dataset.WriteBinary(bw, pset); err != nil {
		return written, err
	}
	wset := &dataset.Dataset{Dim: ix.dim, Range: 1, Points: ix.preferences}
	if err := dataset.WriteBinary(bw, wset); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// ReadIndex deserializes an index written by WriteTo, rebuilding the
// Grid-index and approximate vectors.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+4+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadIndexFile)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	rangeP := math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:]))
	if n < 1 || n > 256 {
		return nil, fmt.Errorf("%w: implausible partition count %d", ErrBadIndexFile, n)
	}
	if rangeP <= 0 || math.IsNaN(rangeP) || math.IsInf(rangeP, 0) {
		return nil, fmt.Errorf("%w: implausible range %v", ErrBadIndexFile, rangeP)
	}
	pset, err := dataset.ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("%w: products: %v", ErrBadIndexFile, err)
	}
	wset, err := dataset.ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("%w: preferences: %v", ErrBadIndexFile, err)
	}
	if pset.Dim != wset.Dim {
		return nil, fmt.Errorf("%w: dimension mismatch %d vs %d", ErrBadIndexFile, pset.Dim, wset.Dim)
	}
	if err := pset.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	if err := wset.ValidateWeights(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	// Same contiguous layout as New: one backing array per set, shared by
	// the index views and the algorithm. The on-disk format is unchanged.
	pm := vec.NewMatrix(pset.Points)
	wm := vec.NewMatrix(wset.Points)
	return &Index{
		products:    pm.Rows(),
		preferences: wm.Rows(),
		dim:         pset.Dim,
		rangeP:      rangeP,
		gir:         algo.NewGIRFromMatrices(pm, wm, rangeP, n),
	}, nil
}

// Save writes the index to the named file.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index from the named file.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}

// Products returns the indexed product vectors. The slice is the index's
// own storage; callers must not modify it.
func (ix *Index) Products() []Vector { return ix.products }

// Preferences returns the indexed preference vectors (not to be modified).
func (ix *Index) Preferences() []Vector { return ix.preferences }

// Product returns a copy of product i.
func (ix *Index) Product(i int) (Vector, error) {
	if i < 0 || i >= len(ix.products) {
		return nil, fmt.Errorf("gridrank: product index %d out of range [0, %d)", i, len(ix.products))
	}
	return vec.Clone(ix.products[i]), nil
}
