package gridrank

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"gridrank/internal/algo"
	"gridrank/internal/bits"
	"gridrank/internal/dataset"
	"gridrank/internal/flight"
	"gridrank/internal/vec"
)

// Three index file formats exist, all little endian. Save and WriteTo
// emit version 3 (GRI3), the zero-copy layout documented in gri3.go:
// every scan artifact stored page-aligned and checksummed, so Load
// reassembles the index without rebuilding anything and LoadMmap serves
// straight from the mapped file.
//
// Versions 1 and 2 store only the authoritative data sets (header, two
// dataset binary blocks, and for version 2 an optional packed-rows
// section) and rebuild the grid artifacts on load:
//
//	magic       uint32  'G''R''I''1' / 'G''R''I''2'
//	n           uint32  grid partitions
//	packedBits  uint32  version 2 only: 0 = unpacked, 4..8 = packed width
//	rangeP      float64
//	products     dataset binary block
//	preferences  dataset binary block
//	packed P^(A) rows (bits.PackedRows block)   — v2, when packedBits > 0
//
// Both load transparently (a version-2 packed section is verified
// byte-for-byte against the rebuilt cells) and re-save as version 3.
//
// A mutated index persists exactly like a fresh build over the same data:
// the mutation paths maintain rangeP with New's derivation (see
// computeRangeP), and the GRI3 writer re-canonicalizes the weight axis
// and group numbering when mutations let them drift (see
// canonicalArtifacts), so Save after any insert/delete sequence produces
// a file byte-identical to Save of New(current data) with the same layout.

const (
	indexMagicV1 = 0x31495247 // "GRI1"
	indexMagic   = 0x32495247 // "GRI2"
	// indexMagicV3 ("GRI3") lives in gri3.go with its format.
)

// Format names reported by Index.Format.
const (
	formatGRI1 = "GRI1"
	formatGRI2 = "GRI2"
	formatGRI3 = "GRI3"
)

// ErrBadIndexFile reports a corrupt or foreign index file.
var ErrBadIndexFile = errors.New("gridrank: bad index file")

// countingWriter tracks every byte reaching the underlying writer, so
// WriteTo can honor the io.WriterTo contract (return the full count, not
// just the last unbuffered write) while still buffering the stream.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the index in the current (GRI3) format. It
// serializes one epoch snapshot: concurrent mutations never tear the
// written file. The returned count is the total number of bytes written
// to w, per the io.WriterTo contract.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	return writeGRI3(w, ix.snap(), ix.dim)
}

// ReadIndex deserializes an index written by WriteTo — any format
// version. GRI3 streams reassemble with full validation; version 1 and
// 2 streams rebuild the Grid-index and approximate vectors from the
// stored data sets.
func ReadIndex(r io.Reader) (*Index, error) {
	return readIndexSized(r, 0)
}

// readIndexSized is ReadIndex with an optional trusted total stream
// size (from Load's stat), which lets the GRI3 reader allocate its
// image buffer exactly once.
func readIndexSized(r io.Reader, sizeHint int64) (*Index, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	packedBits := 0
	format := formatGRI1
	var rangeP float64
	switch magic {
	case indexMagicV3:
		return readIndexV3(br, hdr, sizeHint)
	case indexMagicV1:
		// Version 1: no layout field, no packed section. Loads unpacked;
		// the next Save writes version 3.
		var raw [8]byte
		if _, err := io.ReadFull(br, raw[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
		}
		rangeP = math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
	case indexMagic:
		format = formatGRI2
		var raw [12]byte
		if _, err := io.ReadFull(br, raw[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
		}
		packedBits = int(binary.LittleEndian.Uint32(raw[0:]))
		rangeP = math.Float64frombits(binary.LittleEndian.Uint64(raw[4:]))
		if packedBits != 0 && (packedBits < algo.MinPackedBits || packedBits > algo.MaxPackedBits) {
			return nil, fmt.Errorf("%w: implausible packed width %d", ErrBadIndexFile, packedBits)
		}
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadIndexFile)
	}
	if n < 1 || n > 256 {
		return nil, fmt.Errorf("%w: implausible partition count %d", ErrBadIndexFile, n)
	}
	if packedBits != 0 && 1<<packedBits < n {
		return nil, fmt.Errorf("%w: packed width %d cannot encode %d partitions", ErrBadIndexFile, packedBits, n)
	}
	if rangeP <= 0 || math.IsNaN(rangeP) || math.IsInf(rangeP, 0) {
		return nil, fmt.Errorf("%w: implausible range %v", ErrBadIndexFile, rangeP)
	}
	// The data sets decode straight into the matrices' flat backing
	// arrays (one allocation per set, no per-row copies).
	pset, err := dataset.ReadBinaryFlat(br)
	if err != nil {
		return nil, fmt.Errorf("%w: products: %v", ErrBadIndexFile, err)
	}
	wset, err := dataset.ReadBinaryFlat(br)
	if err != nil {
		return nil, fmt.Errorf("%w: preferences: %v", ErrBadIndexFile, err)
	}
	if pset.Dim != wset.Dim {
		return nil, fmt.Errorf("%w: dimension mismatch %d vs %d", ErrBadIndexFile, pset.Dim, wset.Dim)
	}
	// An index is never built over an empty side (New rejects it, and
	// mutations refuse to delete the last element), so an empty data set
	// here is corruption, not a degenerate-but-valid file.
	if pset.Count() == 0 || wset.Count() == 0 {
		return nil, fmt.Errorf("%w: empty data set", ErrBadIndexFile)
	}
	pset.Range = rangeP
	if err := pset.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	if err := wset.ValidateWeights(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	// Same contiguous layout as New: one backing array per set, shared by
	// the index views and the algorithm.
	pm := vec.MatrixFromFlat(pset.Data, pset.Dim)
	wm := vec.MatrixFromFlat(wset.Data, wset.Dim)
	gir := algo.NewGIRFromMatricesLayout(pm, wm, rangeP, n, algo.Layout{PackedBits: packedBits})
	if packedBits > 0 {
		// The stored packed section must match the cells rebuilt from the
		// data sections exactly: a mismatch means some section was
		// corrupted in a way its own framing checks missed.
		stored, err := bits.ReadRows(br)
		if err != nil {
			return nil, fmt.Errorf("%w: packed rows: %v", ErrBadIndexFile, err)
		}
		if stored.BitsPerDim() != packedBits {
			return nil, fmt.Errorf("%w: packed section width %d, header says %d",
				ErrBadIndexFile, stored.BitsPerDim(), packedBits)
		}
		if !stored.Equal(gir.PointCells().PackRows(packedBits)) {
			return nil, fmt.Errorf("%w: packed rows disagree with rebuilt cells", ErrBadIndexFile)
		}
	}
	ix := &Index{dim: pset.Dim, format: format, fr: flight.New(0)}
	ix.cur.Store(&epoch{
		pm:     pm,
		wm:     wm,
		rangeP: rangeP,
		gir:    gir,
	})
	return ix, nil
}

// fsyncDir makes the directory entries of dir durable — the second half
// of an atomic replace-by-rename (the rename itself only becomes
// crash-safe once the directory block holding it reaches the disk). A
// package variable so the save tests can observe and fail it.
var fsyncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Save writes the index to the named file, atomically and durably: the
// bytes go to a temporary file in the same directory, are fsynced, the
// temporary file is renamed over path only once it is complete, and the
// containing directory is fsynced so the rename itself survives a
// crash. A crash, full disk, or write error part-way through never
// leaves path truncated or torn — an existing good index stays intact.
func (ix *Index) Save(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if _, err := ix.WriteTo(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	// CreateTemp opens 0600; match the permissions os.Create would have
	// given a directly written file.
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return fsyncDir(dir)
}

// Load reads an index from the named file onto the heap. Memory-mapped
// serving is available through LoadMmap.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hint int64
	if st, err := f.Stat(); err == nil {
		hint = st.Size()
	}
	return readIndexSized(f, hint)
}

// Format returns the on-disk format version the index was loaded from
// ("GRI1", "GRI2" or "GRI3"); a freshly built index reports "GRI3", the
// version Save writes.
func (ix *Index) Format() string {
	if ix.format == "" {
		return formatGRI3
	}
	return ix.format
}

// Resident reports where the index's arrays live: "mmap" when they are
// views over a memory-mapped index file (LoadMmap, or after a
// Checkpoint), "heap" otherwise.
func (ix *Index) Resident() string {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.mapped) > 0 {
		return "mmap"
	}
	return "heap"
}

// Close releases the memory mappings of a LoadMmap-opened (or
// checkpointed) index. The index must not be used afterwards — epochs
// alias the mapped file. Heap-resident indexes need no Close; on them
// it is a no-op.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var first error
	for _, m := range ix.mapped {
		if err := munmap(m); err != nil && first == nil {
			first = err
		}
	}
	ix.mapped = nil
	return first
}

// checkpointLoad remaps the just-saved checkpoint file. A package
// variable so the failure-path tests can inject a remap error and
// assert the index keeps serving its old epoch untouched.
var checkpointLoad = LoadMmap

// Checkpoint saves the current epoch to path (atomically and durably,
// like Save) and republishes the index from a mapping of the newly
// written file: subsequent queries serve from page-cache-backed memory
// and the process's private copy of the data becomes collectable. The
// answer cache stays valid — the published epoch holds bit-identical
// data under the same epoch number, and answers are proven independent
// of the group renumbering a save may perform. Mutations, queries and
// Checkpoint may interleave freely; on platforms without memory
// mapping the index republishes from a heap reload instead.
//
// Failure is clean at every stage. A failed Save removes its own
// temporary file and never touches path (and a post-rename fsync
// failure leaves path holding the complete new file). A failed remap
// returns with the index untouched: the current epoch, its mappings
// and the answer cache all keep serving — existing mappings are never
// unmapped here at all (in-flight queries may hold epochs backed by
// them; only Close unmaps, when the caller asserts nothing is). The
// saved file remains either way — it is complete and durable, so a
// later Load/Checkpoint can use it.
func (ix *Index) Checkpoint(path string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	seq := ix.snap().seq
	if err := ix.Save(path); err != nil {
		return err
	}
	m, err := checkpointLoad(path)
	if err != nil {
		return fmt.Errorf("gridrank: checkpoint remap: %w", err)
	}
	ne := m.snap()
	ne.seq = seq // same data, same epoch: cached answers stay valid
	// Adopt the new mapping before the swap; the old mappings stay —
	// published epochs alias them until Close.
	ix.mapped = append(ix.mapped, m.mapped...)
	ix.cur.Store(ne)
	return nil
}

// Products returns the indexed product vectors of the current epoch. The
// slice is the index's own storage; callers must not modify it.
func (ix *Index) Products() []Vector { return ix.snap().pm.Rows() }

// Preferences returns the indexed preference vectors of the current
// epoch (not to be modified).
func (ix *Index) Preferences() []Vector { return ix.snap().wm.Rows() }

// Product returns a copy of product i.
func (ix *Index) Product(i int) (Vector, error) {
	pm := ix.snap().pm
	if i < 0 || i >= pm.Len() {
		return nil, fmt.Errorf("gridrank: product index %d out of range [0, %d)", i, pm.Len())
	}
	return vec.Clone(pm.Row(i)), nil
}
