// Package gridrank answers reverse rank queries — "which users would rank
// this product highly?" — with the Grid-index (GIR) algorithm of Dong,
// Chen, Furuse, Yu and Kitagawa, "Grid-Index Algorithm for Reverse Rank
// Queries", EDBT 2017.
//
// Given a set of products P (d-dimensional points, smaller attribute
// values preferable) and a set of user preferences W (non-negative weight
// vectors summing to 1), the score of product p for user w is the inner
// product f_w(p) = Σ w[i]·p[i] and rank(w, q) counts the products scoring
// strictly below q. Two queries are supported:
//
//   - Reverse top-k (RTK): all users who place the query product in their
//     personal top-k.
//   - Reverse k-ranks (RKR): the k users who rank the query product best,
//     which is never empty — useful for unpopular products.
//
// The Grid-index pre-computes an (n+1)×(n+1) table of partition-boundary
// products and a compact approximate vector per product and user; at query
// time most products are decided against most users using only table
// lookups and additions, making the scan robust to high dimensionality
// where tree-based indexes degenerate.
//
// # Quick start
//
//	ix, err := gridrank.New(products, preferences, nil)
//	if err != nil { ... }
//	users, err := ix.ReverseTopKCtx(ctx, myProduct, 10)   // RTK
//	best, err := ix.ReverseKRanksCtx(ctx, myProduct, 5)   // RKR
//
// The context cancels or time-bounds a running query; per-call options
// (WithWorkers, WithStats) tune a single query without further methods.
//
// The internal packages additionally provide the paper's baselines (simple
// scan, BBR, MPA, RTA) and the full benchmark harness; see cmd/experiments
// and DESIGN.md.
package gridrank

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gridrank/internal/algo"
	"gridrank/internal/cache"
	"gridrank/internal/flight"
	"gridrank/internal/model"
	"gridrank/internal/stats"
	"gridrank/internal/sub"
	"gridrank/internal/topk"
	"gridrank/internal/trace"
	"gridrank/internal/vec"
)

// Vector is a d-dimensional product point or preference vector.
type Vector = []float64

// Match is one reverse k-ranks result: a preference index and the number
// of products ranked strictly above the query for that preference (the
// query's 1-based rank is Rank+1).
type Match struct {
	WeightIndex int
	Rank        int
}

// Result is one top-k result: a product index and its score.
type Result struct {
	Index int
	Score float64
}

// Stats reports the work a query performed.
type Stats struct {
	// PairwiseMults is the number of exact inner products computed.
	PairwiseMults int64
	// BoundSums is the number of Grid-index bound evaluations (additions
	// and lookups only).
	BoundSums int64
	// Filtered is the number of points decided by bounds alone. It is
	// always Case1Filtered + Case2Filtered.
	Filtered int64
	// Case1Filtered is the number of filtered points that counted against
	// the query (upper bound below the query score, Section 3.1 Case 1).
	Case1Filtered int64
	// Case2Filtered is the number of filtered points discarded outright
	// (lower bound above the query score, Case 2).
	Case2Filtered int64
	// Refined is the number of points needing an exact score.
	Refined int64
}

// FilterRate is Filtered / (Filtered + Refined), the fraction of examined
// points the Grid-index decided without a multiplication.
func (s Stats) FilterRate() float64 {
	if s.Filtered+s.Refined == 0 {
		return 0
	}
	return float64(s.Filtered) / float64(s.Filtered+s.Refined)
}

func fromCounters(c *stats.Counters) Stats {
	return Stats{
		PairwiseMults: c.PairwiseMults,
		BoundSums:     c.BoundSums,
		Filtered:      c.Filtered,
		Case1Filtered: c.Case1Filtered,
		Case2Filtered: c.Case2Filtered,
		Refined:       c.Refinements,
	}
}

// Options configures index construction. The zero value (or nil) uses the
// paper's defaults.
type Options struct {
	// GridPartitions is the per-axis partition count n of the Grid-index.
	// Default 32, the paper's setting, sufficient for >99% worst-case
	// model filtering up to d ≈ 20.
	GridPartitions int

	// TargetFiltering, when in (0, 1), sizes the grid automatically with
	// Theorem 1 so the model's worst-case filtering performance exceeds
	// it, overriding GridPartitions. For example 0.99 requests ε = 1%.
	TargetFiltering float64

	// Parallelism is the default number of worker goroutines a single
	// query shards the preference set across. 0 and 1 keep the
	// sequential scan (the default: the batch methods already
	// parallelize across queries, and intra-query workers nested under
	// them would oversubscribe the CPUs); values above 1 enable the
	// intra-query worker pool for every query on this index. Answers are
	// bit-identical at every setting — only the work distribution
	// changes. Per-call overrides are available through the
	// ReverseTopKParallel and ReverseKRanksParallel methods.
	Parallelism int

	// CacheSize, when positive, attaches an answer cache holding up to
	// that many query results (see EnableCache). Cached answers are
	// invalidated epoch-exactly by mutations, so the cache never changes
	// any answer. 0 leaves the cache off.
	CacheSize int

	// CacheTTL bounds the lifetime of cached answers when CacheSize is
	// set; 0 means entries live until invalidated or evicted.
	CacheTTL time.Duration

	// PackedBits selects the physical layout of the scan structures: 0
	// (the default) stores approximate product rows unpacked at one byte
	// per cell; a value in [4, 8] stores them bit-packed at that many
	// bits per cell and classifies them with the widened multi-row scan
	// kernels (see DESIGN.md §13). Answers are byte-identical either way
	// — only speed and memory change. 1<<PackedBits must be at least the
	// grid partition count, so the default n=32 grid needs PackedBits ≥ 5.
	PackedBits int

	// FlightCapacity sizes the always-on flight recorder's ring (rounded
	// up to a power of two). 0 selects the default
	// (flight.DefaultCapacity); a negative value disables the recorder
	// entirely — intended for measurements, since recording costs zero
	// allocations and a few atomic operations per query (see DESIGN.md
	// §16).
	FlightCapacity int
}

// Layout reports the physical representation an index was built with,
// as returned by Index.Layout.
type Layout struct {
	// Packed is true when approximate product rows are stored
	// bit-packed (Options.PackedBits > 0).
	Packed bool
	// BitsPerDim is the packed cell width, 0 when unpacked.
	BitsPerDim int
	// RowBlock is the number of rows the scan kernel classifies per
	// call: algo.RowBlock when packed, 1 when unpacked.
	RowBlock int
}

// ErrDimensionMismatch reports a query vector whose dimensionality does
// not match the index.
var ErrDimensionMismatch = errors.New("gridrank: dimension mismatch")

// ErrBadK reports a non-positive k.
var ErrBadK = errors.New("gridrank: k must be positive")

// ErrBadParallelism reports a negative worker count.
var ErrBadParallelism = errors.New("gridrank: parallelism must be non-negative")

// ErrBadPackedBits reports an Options.PackedBits outside {0} ∪ [4, 8],
// or one too narrow to encode the grid's partition count.
var ErrBadPackedBits = errors.New("gridrank: invalid PackedBits")

// Index holds the Grid-index over one product set and one preference
// set. It is safe for concurrent use: queries read an immutable epoch
// snapshot resolved once per call (no locks on the query path), and the
// mutation methods (InsertProduct, DeleteProduct, InsertPreference,
// DeletePreference and their Ctx/batch variants — see mutate.go)
// install new epochs behind a writer lock without disturbing in-flight
// queries.
type Index struct {
	dim int
	// par is the default intra-query worker count (Options.Parallelism /
	// SetParallelism); atomic so it can be retuned while serving.
	par atomic.Int32
	// mu serializes mutators; queries never take it.
	mu sync.Mutex
	// cur is the current epoch. Mutators build the next epoch under mu
	// and publish it with one atomic store; queries load it once and run
	// entirely against that snapshot.
	cur atomic.Pointer[epoch]
	// answers is the optional answer cache (nil = off); see
	// answercache.go for the enablement and invalidation wiring.
	answers atomic.Pointer[cache.Cache]
	// subs is the subscription registry, created on first Subscribe
	// (nil until then); see subscriptions.go for the publish hooks.
	subs atomic.Pointer[sub.Registry]
	// subTracer, when set, records diff-pass traces; guarded by mu
	// (the hooks and SetSubscriptionTracer both hold it).
	subTracer *trace.Tracer
	// fr is the always-on flight recorder: a bounded ring of fixed-size
	// digests, one per query / mutation / subscription event, recorded
	// unconditionally (see internal/flight and flightrecorder.go). nil
	// only when Options.FlightCapacity is negative — every recording
	// site is nil-safe. Immutable after construction.
	fr *flight.Recorder
	// format is the on-disk format version the index came from, "" for a
	// fresh build (see Format). Immutable after construction.
	format string
	// mapped holds the memory mappings backing this index's epochs
	// (LoadMmap, Checkpoint); guarded by mu, released by Close.
	mapped [][]byte
}

// epoch is one immutable snapshot of the indexed data and its derived
// structures. Everything reachable from an epoch is read-only after
// publication; successive epochs share whatever a mutation left
// untouched (the grid table, the whole non-mutated side, and — via
// copy-on-write matrices — most of the raw data).
type epoch struct {
	// seq numbers epochs from 0 (construction), incremented per install.
	seq    uint64
	pm, wm *vec.Matrix
	rangeP float64
	gir    *algo.GIR
}

// snap returns the current epoch snapshot.
func (ix *Index) snap() *epoch { return ix.cur.Load() }

// computeRangeP reproduces New's point-range derivation exactly — max
// attribute, floored at 1 for all-zero sets, nudged one ulp up — so an
// index maintained by mutations persists byte-identically to one built
// fresh over the same data.
func computeRangeP(products []Vector) float64 {
	rangeP := 0.0
	for _, p := range products {
		for _, x := range p {
			if x > rangeP {
				rangeP = x
			}
		}
	}
	if rangeP == 0 {
		rangeP = 1
	}
	return math.Nextafter(rangeP, math.Inf(1))
}

// New validates the data sets and builds the Grid-index. Products must
// have non-negative attributes of a consistent dimensionality; preferences
// must be non-negative weight vectors of the same dimensionality summing
// to 1 (within 1e-6).
func New(products, preferences []Vector, opts *Options) (*Index, error) {
	if len(products) == 0 {
		return nil, errors.New("gridrank: empty product set")
	}
	if len(preferences) == 0 {
		return nil, errors.New("gridrank: empty preference set")
	}
	d := len(products[0])
	if d == 0 {
		return nil, errors.New("gridrank: zero-dimensional products")
	}
	rangeP := 0.0
	for i, p := range products {
		if len(p) != d {
			return nil, fmt.Errorf("%w: product %d has %d dimensions, want %d",
				ErrDimensionMismatch, i, len(p), d)
		}
		for j, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
				return nil, fmt.Errorf("gridrank: product %d attribute %d = %v (must be finite and non-negative)", i, j, x)
			}
			if x > rangeP {
				rangeP = x
			}
		}
	}
	if rangeP == 0 {
		rangeP = 1 // all-zero products still index cleanly
	}
	for i, w := range preferences {
		if len(w) != d {
			return nil, fmt.Errorf("%w: preference %d has %d dimensions, want %d",
				ErrDimensionMismatch, i, len(w), d)
		}
		sum := 0.0
		for j, x := range w {
			if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
				return nil, fmt.Errorf("gridrank: preference %d weight %d = %v (must be finite and non-negative)", i, j, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			return nil, fmt.Errorf("gridrank: preference %d weights sum to %v, want 1", i, sum)
		}
	}

	n := algo.DefaultPartitions
	parallelism := 0
	packedBits := 0
	if opts != nil {
		if opts.GridPartitions < 0 {
			return nil, fmt.Errorf("gridrank: negative GridPartitions %d", opts.GridPartitions)
		}
		if opts.Parallelism < 0 {
			return nil, fmt.Errorf("gridrank: negative Parallelism %d", opts.Parallelism)
		}
		if opts.CacheSize < 0 {
			return nil, fmt.Errorf("gridrank: negative CacheSize %d", opts.CacheSize)
		}
		if opts.CacheTTL < 0 {
			return nil, fmt.Errorf("gridrank: negative CacheTTL %v", opts.CacheTTL)
		}
		if opts.CacheTTL > 0 && opts.CacheSize == 0 {
			return nil, fmt.Errorf("gridrank: CacheTTL requires CacheSize > 0")
		}
		parallelism = opts.Parallelism
		if opts.GridPartitions > 0 {
			n = opts.GridPartitions
		}
		if opts.TargetFiltering != 0 {
			if opts.TargetFiltering <= 0 || opts.TargetFiltering >= 1 {
				return nil, fmt.Errorf("gridrank: TargetFiltering %v outside (0, 1)", opts.TargetFiltering)
			}
			auto, err := model.RequiredPartitionsPow2(d, 1-opts.TargetFiltering)
			if err != nil {
				return nil, fmt.Errorf("gridrank: sizing grid: %w", err)
			}
			n = auto
		}
		if opts.PackedBits != 0 {
			if opts.PackedBits < algo.MinPackedBits || opts.PackedBits > algo.MaxPackedBits {
				return nil, fmt.Errorf("%w: %d outside {0} ∪ [%d, %d]",
					ErrBadPackedBits, opts.PackedBits, algo.MinPackedBits, algo.MaxPackedBits)
			}
			if 1<<opts.PackedBits < n {
				return nil, fmt.Errorf("%w: %d bits cannot encode %d grid partitions",
					ErrBadPackedBits, opts.PackedBits, n)
			}
			packedBits = opts.PackedBits
		}
	}
	// rangeP is the max observed value; nudge it up so the top value maps
	// strictly inside the last cell even after floating-point rounding
	// (computeRangeP applies the same rule for the mutation paths).
	rangeP = math.Nextafter(rangeP, math.Inf(1))
	// Copy both sets into contiguous row-major storage: the index and the
	// algorithm share one backing array per set, the scans stream
	// sequential memory, and callers keep ownership of their slices.
	pm := vec.NewMatrix(products)
	wm := vec.NewMatrix(preferences)
	ix := &Index{dim: d}
	flightCap := 0
	if opts != nil {
		flightCap = opts.FlightCapacity
	}
	if flightCap >= 0 {
		ix.fr = flight.New(flightCap)
	}
	ix.par.Store(int32(parallelism))
	ix.cur.Store(&epoch{
		pm:     pm,
		wm:     wm,
		rangeP: rangeP,
		gir:    algo.NewGIRFromMatricesLayout(pm, wm, rangeP, n, algo.Layout{PackedBits: packedBits}),
	})
	if opts != nil && opts.CacheSize > 0 {
		if err := ix.EnableCache(opts.CacheSize, opts.CacheTTL); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Dim returns the indexed dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// NumProducts returns |P| of the current epoch.
func (ix *Index) NumProducts() int { return ix.snap().pm.Len() }

// NumPreferences returns |W| of the current epoch.
func (ix *Index) NumPreferences() int { return ix.snap().wm.Len() }

// GridPartitions returns the grid resolution n chosen at construction.
func (ix *Index) GridPartitions() int { return ix.snap().gir.Grid().N() }

// Epoch returns the index's mutation epoch: 0 for a freshly built or
// loaded index, incremented by one for every installed mutation (a
// batch call counts as one). Two calls observing the same epoch saw the
// identical immutable snapshot.
func (ix *Index) Epoch() uint64 { return ix.snap().seq }

// Parallelism returns the default intra-query worker count configured
// through Options.Parallelism or SetParallelism (0 means sequential).
func (ix *Index) Parallelism() int { return int(ix.par.Load()) }

// SetParallelism changes the default intra-query worker count, e.g. for
// an index restored with Load (the setting is runtime configuration and
// is not persisted). It is safe to call while queries are in flight;
// running queries keep the count they resolved at entry.
func (ix *Index) SetParallelism(workers int) error {
	if workers < 0 {
		return fmt.Errorf("%w: got %d", ErrBadParallelism, workers)
	}
	ix.par.Store(int32(workers))
	return nil
}

// Layout reports the physical representation of the current epoch's
// scan structures: whether approximate product rows are bit-packed, at
// what width, and how many rows the scan kernel classifies per call.
func (ix *Index) Layout() Layout {
	b := ix.snap().gir.PackedBits()
	if b == 0 {
		return Layout{Packed: false, BitsPerDim: 0, RowBlock: 1}
	}
	return Layout{Packed: true, BitsPerDim: b, RowBlock: algo.RowBlock}
}

// GridMemoryBytes returns the memory footprint of the boundary table.
func (ix *Index) GridMemoryBytes() int { return ix.snap().gir.Grid().MemoryBytes() }

// PointGroups returns the number of distinct approximate product rows —
// grid cells actually occupied by P. The scan's bound work is
// proportional to this, not to NumProducts(): the further it falls
// below NumProducts(), the more the cell-grouped scan saves (DESIGN.md
// §9). Equal values mean grouping is inert for this data and grid.
func (ix *Index) PointGroups() int { return ix.snap().gir.PointGroups() }

// WeightGroups is PointGroups for the preference set: the number of
// distinct approximate preference rows. Preferences sharing a row reuse
// the gathered bound columns during a scan.
func (ix *Index) WeightGroups() int { return ix.snap().gir.WeightGroups() }

func (ix *Index) checkQuery(q Vector, k int) error {
	if len(q) != ix.dim {
		return fmt.Errorf("%w: query has %d dimensions, want %d", ErrDimensionMismatch, len(q), ix.dim)
	}
	for j, x := range q {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return fmt.Errorf("gridrank: query attribute %d = %v (must be finite and non-negative)", j, x)
		}
	}
	if k <= 0 {
		return fmt.Errorf("%w: got %d", ErrBadK, k)
	}
	return nil
}

// checkPreference validates an ad-hoc preference vector (TopK, Rank):
// the dimensionality must match and every weight must be finite and
// non-negative. NaN or ±Inf weights would silently poison every score
// comparison, so they are rejected up front.
func (ix *Index) checkPreference(w Vector) error {
	if len(w) != ix.dim {
		return fmt.Errorf("%w: preference has %d dimensions, want %d", ErrDimensionMismatch, len(w), ix.dim)
	}
	for j, x := range w {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return fmt.Errorf("gridrank: preference weight %d = %v (must be finite and non-negative)", j, x)
		}
	}
	return nil
}

// The eight methods below are the pre-context query surface, kept as
// wrappers so existing callers migrate without breakage. Each is a
// single delegation to the context-first entrypoints in query.go; see
// the migration table in README.md.

// ReverseTopK returns, in ascending order, the indexes of every
// preference vector that places q within its top-k products.
//
// Deprecated: Use ReverseTopKCtx, which adds cancellation, deadlines and
// per-call options. This method is ReverseTopKCtx(context.Background(), q, k).
func (ix *Index) ReverseTopK(q Vector, k int) ([]int, error) {
	return ix.ReverseTopKCtx(context.Background(), q, k)
}

// ReverseTopKStats is ReverseTopK with work statistics.
//
// Deprecated: Use ReverseTopKCtx with WithStats.
func (ix *Index) ReverseTopKStats(q Vector, k int) (res []int, s Stats, err error) {
	res, err = ix.ReverseTopKCtx(context.Background(), q, k, WithStats(&s))
	return res, s, err
}

// ReverseTopKParallel is ReverseTopK with an explicit intra-query worker
// count overriding the index default: 1 forces the sequential scan,
// values above 1 shard the preference set across that many goroutines,
// and 0 means GOMAXPROCS. The answer is bit-identical for every worker
// count; negative counts are rejected.
//
// Deprecated: Use ReverseTopKCtx with WithWorkers.
func (ix *Index) ReverseTopKParallel(q Vector, k, workers int) ([]int, error) {
	return ix.ReverseTopKCtx(context.Background(), q, k, WithWorkers(workers))
}

// ReverseTopKParallelStats is ReverseTopKParallel with work statistics.
//
// Deprecated: Use ReverseTopKCtx with WithWorkers and WithStats.
func (ix *Index) ReverseTopKParallelStats(q Vector, k, workers int) (res []int, s Stats, err error) {
	res, err = ix.ReverseTopKCtx(context.Background(), q, k, WithWorkers(workers), WithStats(&s))
	return res, s, err
}

// ReverseKRanks returns the k preference vectors ranking q best, ordered
// by ascending rank (ties toward smaller indexes). It never returns an
// empty answer for k ≥ 1 — if fewer than k preferences exist, all are
// returned.
//
// Deprecated: Use ReverseKRanksCtx, which adds cancellation, deadlines
// and per-call options. This method is
// ReverseKRanksCtx(context.Background(), q, k).
func (ix *Index) ReverseKRanks(q Vector, k int) ([]Match, error) {
	return ix.ReverseKRanksCtx(context.Background(), q, k)
}

// ReverseKRanksStats is ReverseKRanks with work statistics.
//
// Deprecated: Use ReverseKRanksCtx with WithStats.
func (ix *Index) ReverseKRanksStats(q Vector, k int) (res []Match, s Stats, err error) {
	res, err = ix.ReverseKRanksCtx(context.Background(), q, k, WithStats(&s))
	return res, s, err
}

// ReverseKRanksParallel is ReverseKRanks with an explicit intra-query
// worker count overriding the index default: 1 forces the sequential
// scan, values above 1 shard the preference set across that many
// goroutines, and 0 means GOMAXPROCS. The answer is bit-identical for
// every worker count; negative counts are rejected.
//
// Deprecated: Use ReverseKRanksCtx with WithWorkers.
func (ix *Index) ReverseKRanksParallel(q Vector, k, workers int) ([]Match, error) {
	return ix.ReverseKRanksCtx(context.Background(), q, k, WithWorkers(workers))
}

// ReverseKRanksParallelStats is ReverseKRanksParallel with work
// statistics.
//
// Deprecated: Use ReverseKRanksCtx with WithWorkers and WithStats.
func (ix *Index) ReverseKRanksParallelStats(q Vector, k, workers int) (res []Match, s Stats, err error) {
	res, err = ix.ReverseKRanksCtx(context.Background(), q, k, WithWorkers(workers), WithStats(&s))
	return res, s, err
}

// AggMatch is one aggregate reverse rank result: a preference index and
// the bundle's total rank under it (smaller is better).
type AggMatch struct {
	WeightIndex int
	AggRank     int
}

// AggregateReverseRank returns the k preferences that rank a whole bundle
// of query products best, by the sum of per-product ranks — the aggregate
// reverse rank query of Dong et al. (DEXA 2016), the bundling extension of
// reverse k-ranks. Ties resolve toward smaller preference indexes.
func (ix *Index) AggregateReverseRank(bundle []Vector, k int) ([]AggMatch, error) {
	if len(bundle) == 0 {
		return nil, errors.New("gridrank: empty bundle")
	}
	for _, q := range bundle {
		if err := ix.checkQuery(q, k); err != nil {
			return nil, err
		}
	}
	res := ix.snap().gir.AggregateReverseRank(bundle, k, nil)
	out := make([]AggMatch, len(res))
	for i, m := range res {
		out[i] = AggMatch{WeightIndex: m.WeightIndex, AggRank: m.AggRank}
	}
	return out, nil
}

// TopK returns the k best-scoring (lowest) products for a preference
// vector, the forward query of Definition 1.
func (ix *Index) TopK(w Vector, k int) ([]Result, error) {
	if err := ix.checkPreference(w); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadK, k)
	}
	res := topk.TopK(ix.snap().pm.Rows(), w, k, nil)
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{Index: r.Index, Score: r.Score}
	}
	return out, nil
}

// Rank returns rank(w, q): how many products score strictly below q under
// w. The product's 1-based position in w's ranking is Rank+1.
func (ix *Index) Rank(w, q Vector) (int, error) {
	if err := ix.checkPreference(w); err != nil {
		return 0, err
	}
	if len(q) != ix.dim {
		return 0, fmt.Errorf("%w: query has %d dimensions, want %d", ErrDimensionMismatch, len(q), ix.dim)
	}
	for j, x := range q {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return 0, fmt.Errorf("gridrank: query attribute %d = %v (must be finite and non-negative)", j, x)
		}
	}
	return topk.Rank(ix.snap().pm.Rows(), w, q, nil), nil
}

// WeightInterval is a closed range [Lo, Hi] of λ values: every preference
// (λ, 1−λ) inside it places the query product in its top-k.
type WeightInterval struct {
	Lo, Hi float64
}

// MonoReverseTopK answers the monochromatic reverse top-k query over a
// 2-dimensional product set: instead of matching against a finite
// preference set, it returns the regions of the whole weight space
// {(λ, 1−λ) : λ ∈ [0, 1]} in which q ranks within the top-k. This is the
// other reverse top-k variant of Vlachou et al. (the paper evaluates the
// bichromatic one); it is only defined for d = 2.
func MonoReverseTopK(products []Vector, q Vector, k int) ([]WeightInterval, error) {
	ivs, err := algo.MonoRTK(products, q, k)
	if err != nil {
		return nil, err
	}
	out := make([]WeightInterval, len(ivs))
	for i, iv := range ivs {
		out[i] = WeightInterval{Lo: iv.Lo, Hi: iv.Hi}
	}
	return out, nil
}

// RequiredPartitions returns Theorem 1's minimum grid resolution for a
// d-dimensional data set so the model's worst-case filtering performance
// exceeds target (for example 0.99), rounded up to a power of two so
// approximate vectors bit-pack exactly.
func RequiredPartitions(d int, target float64) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("gridrank: target %v outside (0, 1)", target)
	}
	return model.RequiredPartitionsPow2(d, 1-target)
}
